//! Per-decision observability: the [`DecisionObserver`] hook, the
//! [`TraceEvent`] stream (schema v2) emitted for every placement,
//! completion, monitor tick and failure event, and sinks.
//!
//! Both execution substrates — the event-driven simulator and the live
//! emulation — thread the observer through the *same* `Scheduler`
//! value, so the JSONL a [`JsonlSink`] writes is schema-identical
//! regardless of which substrate drove the run.
//!
//! # JSONL schema
//!
//! Schema v2 is *event-sourced*: every line is one JSON object with a
//! version tag `"v"` and an event tag `"ev"`, and the line sequence
//! records every scheduler-state mutation in call order. That makes a
//! log a complete replay input: [`crate::sched::replay`] re-drives any
//! scheduler composition over it and diffs the placements.
//!
//! | `ev` | emitted on | payload |
//! |---|---|---|
//! | `meta` | run start | substrate, cluster shape, policy, seed, priors |
//! | `decision` | every placement | the [`DecisionRecord`] fields |
//! | `complete` | request completion | request, node, class, response |
//! | `tick` | monitor tick | cumulative per-node busy counters, ρ |
//! | `node-down` / `node-up` | liveness change | node index |
//! | `drop` | request dropped | request, class, whether the scheduler ran |
//! | `alert` | SLO burn-rate rule fired (only when rules attached) | rule, signal, observed vs budget |
//!
//! Schema v1 lines (bare [`DecisionRecord`] objects with no `"v"`/`"ev"`
//! tags, as written before the replay analyzer existed) still parse:
//! [`parse_line`] maps them to [`TraceEvent::Decision`] with the v2-only
//! fields defaulted and reports a warning instead of an error. Unknown
//! fields and newer schema versions likewise degrade to warnings.

use super::region::RegionTopology;
use serde::{Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Current version written into every line's `"v"` field.
pub const TRACE_SCHEMA_VERSION: u64 = 2;

/// Everything the scheduler knew (and decided) for one placement.
///
/// Serialised one-per-line by [`JsonlSink`]. `candidates` is the
/// post-shuffle candidate set the scorer saw (empty when the request
/// stayed on its entry node) and `scores` the per-candidate scorer
/// values sampled *before* the charge-back debit, i.e. exactly what the
/// decision was based on.
///
/// The fields after `latency_us` are new in schema v2: they capture the
/// *inputs* of the decision (`req`, `at_us`, `demand_us`, `w`,
/// `expected_us`, `restart`) and the admission verdict (`masters_ok`),
/// which is what lets [`crate::sched::replay`] re-drive the decision and
/// attribute a disagreement to a pipeline stage. Logs written by the v1
/// schema parse with these fields defaulted.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecisionRecord {
    /// 1-based decision sequence number within the scheduler.
    pub seq: u64,
    /// Whether the request was dynamic (CGI-class).
    pub dynamic: bool,
    /// Entry node chosen by the front end.
    pub entry: usize,
    /// Candidate nodes considered, in scoring order.
    pub candidates: Vec<usize>,
    /// Per-candidate scores aligned with `candidates` (RSRC cost for
    /// the built-in policies; lower is better).
    pub scores: Vec<f64>,
    /// Measured fraction of dynamic requests routed to masters (θ̂).
    pub theta_hat: f64,
    /// Current reservation admission cap (θ2*, Theorem 1).
    pub theta2_star: f64,
    /// Node the request was placed on.
    pub chosen: usize,
    /// Whether the placement counts toward the master level.
    pub on_master: bool,
    /// Whether the move was an HTTP redirection (client round trip)
    /// rather than an in-cluster transfer.
    pub redirected: bool,
    /// Transfer latency paid, in microseconds.
    pub latency_us: u64,
    /// Driver request id (trace index); equals `seq` when the driver
    /// did not annotate the request.
    pub req: u64,
    /// Decision time in microseconds of substrate time.
    pub at_us: u64,
    /// The request's actual service demand in microseconds (0 when the
    /// driver did not annotate it).
    pub demand_us: u64,
    /// The sampled CPU weight `w` passed to `place`.
    pub w: f64,
    /// The expected-demand charge passed to `place`, in microseconds.
    pub expected_us: u64,
    /// The admission stage's verdict: whether masters were eligible for
    /// this request.
    pub masters_ok: bool,
    /// Whether this decision re-placed a request lost to a node failure
    /// (`replace_after_failure`).
    pub restart: bool,
    /// Client origin region index the driver tagged the request with.
    /// Only meaningful (and only serialised) when `region` is `Some`;
    /// region-free logs parse it back as 0.
    pub origin: usize,
    /// Region chosen by the region stage, `None` when the pipeline has
    /// no region front tier. `origin` and `region` are serialised only
    /// when this is `Some`, so region-free logs keep the exact pre-
    /// region field set.
    pub region: Option<usize>,
}

/// One node's cumulative load counters as sampled at a monitor tick —
/// the recorded form of an `ossim` `LoadSnapshot`, sufficient to replay
/// `LoadMonitor::tick` exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSample {
    /// Cumulative CPU busy time, microseconds.
    pub cpu_busy_us: u64,
    /// Cumulative disk busy time, microseconds.
    pub disk_busy_us: u64,
    /// Fraction of memory free at the tick.
    pub mem_free_ratio: f64,
    /// CPU ready-queue length at the tick.
    pub ready_len: usize,
    /// Disk queue length at the tick.
    pub disk_queue_len: usize,
    /// Live processes at the tick.
    pub processes: usize,
}

impl NodeSample {
    /// Record an `ossim` snapshot (drops the timestamp, which the tick
    /// event carries once for all nodes).
    pub fn from_snapshot(s: &msweb_ossim::LoadSnapshot) -> Self {
        NodeSample {
            cpu_busy_us: s.cpu_busy.as_micros(),
            disk_busy_us: s.disk_busy.as_micros(),
            mem_free_ratio: s.mem_free_ratio,
            ready_len: s.ready_len,
            disk_queue_len: s.disk_queue_len,
            processes: s.processes,
        }
    }

    /// Rebuild the `ossim` snapshot at tick time `at_us`.
    pub fn to_snapshot(self, at_us: u64) -> msweb_ossim::LoadSnapshot {
        msweb_ossim::LoadSnapshot {
            at: msweb_simcore::SimTime(at_us),
            cpu_busy: msweb_simcore::SimDuration::from_micros(self.cpu_busy_us),
            disk_busy: msweb_simcore::SimDuration::from_micros(self.disk_busy_us),
            mem_free_ratio: self.mem_free_ratio,
            ready_len: self.ready_len,
            disk_queue_len: self.disk_queue_len,
            processes: self.processes,
        }
    }
}

/// Run-level identity emitted once at the head of a traced run: enough
/// to rebuild the scheduler (and its deterministic RNG) for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Which substrate drove the run: `"sim"` or `"live"`.
    pub substrate: String,
    /// Cluster size `p`.
    pub p: usize,
    /// Resolved master count `m`.
    pub m: usize,
    /// Policy slug (`PolicyKind::slug`) the scheduler was built for.
    pub policy: String,
    /// Registry stage spec, when the run used a custom composition
    /// rather than the built-in policy factory.
    pub spec: Option<String>,
    /// Dispatch RNG seed.
    pub seed: u64,
    /// Arrival-ratio prior seeding the reservation controller.
    pub a0: f64,
    /// Demand-ratio prior seeding the reservation controller.
    pub r0: f64,
    /// Master capacity reserve.
    pub master_reserve: f64,
    /// DNS cache skew of the front end.
    pub dns_skew: f64,
    /// Monitor period, microseconds.
    pub monitor_period_us: u64,
    /// Remote dispatch latency, microseconds.
    pub remote_latency_us: u64,
    /// Redirect round-trip penalty, microseconds.
    pub redirect_rtt_us: u64,
    /// Per-node speed factors (`None` = homogeneous).
    pub speeds: Option<Vec<f64>>,
    /// Region topology, when the run used a region front tier.
    /// Serialised only when `Some`, so region-free logs keep the exact
    /// pre-region field set.
    pub regions: Option<RegionTopology>,
}

/// A dropped request: either the front end found no live node (the
/// scheduler ran and consumed RNG draws before failing) or fail-over
/// bookkeeping discarded it without consulting the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct DropRecord {
    /// Driver request id.
    pub req: u64,
    /// Drop time in microseconds of substrate time.
    pub at_us: u64,
    /// Whether the request was dynamic.
    pub dynamic: bool,
    /// The sampled CPU weight that was (or would have been) passed to
    /// the scheduler.
    pub w: f64,
    /// The expected-demand charge, microseconds.
    pub expected_us: u64,
    /// Whether the scheduler was actually invoked (and advanced its
    /// RNG) before the drop — replay must re-drive such calls to stay
    /// in lockstep.
    pub redrive: bool,
    /// Whether the drop happened on the fail-over path (a lost request
    /// that was not restarted) rather than at the front end.
    pub restart: bool,
    /// Client origin region of the dropped request; 0 for regionless
    /// workloads (serialised only when non-zero, so regionless logs are
    /// byte-identical to older ones). Replay re-drives the drop with
    /// the same origin to stay in lockstep under region outages.
    pub origin: usize,
}

/// One line of a schema-v2 decision log; see the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run identity; first line of every traced run.
    Meta(RunMeta),
    /// One placement decision.
    Decision(DecisionRecord),
    /// A request completed on `node`.
    Complete {
        /// Driver request id.
        req: u64,
        /// Node the request completed on.
        node: usize,
        /// Whether the request's *class* was dynamic (note: a cached
        /// CGI hit is placed as static but completes as dynamic here,
        /// matching the reservation controller's response feed).
        dynamic: bool,
        /// Response time, microseconds.
        response_us: u64,
    },
    /// A load-monitor tick.
    Tick {
        /// Tick time, microseconds.
        at_us: u64,
        /// Mean cluster utilisation fed to the reservation controller.
        rho: f64,
        /// Per-node cumulative counters, in node order.
        nodes: Vec<NodeSample>,
    },
    /// A node was marked dead.
    NodeDown {
        /// Node index.
        node: usize,
    },
    /// A node was revived.
    NodeUp {
        /// Node index.
        node: usize,
    },
    /// A request was dropped.
    Drop(DropRecord),
    /// An SLO burn-rate alert fired by the telemetry SLO engine
    /// (see [`crate::telemetry::slo`]). Emitted only when a run is
    /// driven with SLO rules attached, so logs from rule-less runs stay
    /// byte-identical to older ones; replay skips it (the alert is
    /// derived data, re-computable from the surrounding events by
    /// `msweb slo-check`).
    Alert {
        /// Window end the alert fired at, microseconds.
        at_us: u64,
        /// Name of the rule that fired.
        rule: String,
        /// Signal the rule watches (`stretch`, `drop_rate`, `clamp_rate`).
        signal: String,
        /// Rolling-window length, in monitor windows.
        windows: u64,
        /// Burn-rate threshold (multiple of the budget).
        burn_rate: f64,
        /// Observed rolling mean of the signal.
        observed: f64,
        /// The rule's budget for the signal.
        budget: f64,
    },
    /// An event tag this version does not know (a newer schema);
    /// parsed for forward compatibility, skipped by replay.
    Unknown {
        /// The unrecognised `"ev"` tag.
        ev: String,
    },
}

// ------------------------------------------------------------- encoding

fn u(n: u64) -> Value {
    Value::UInt(n)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn tagged(ev: &str, mut rest: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![
        ("v", u(TRACE_SCHEMA_VERSION)),
        ("ev", Value::Str(ev.to_string())),
    ];
    fields.append(&mut rest.iter_mut().map(|(k, v)| (*k, v.clone())).collect());
    obj(fields)
}

fn decision_value(r: &DecisionRecord) -> Value {
    let mut fields = vec![
        ("seq", u(r.seq)),
        ("dynamic", Value::Bool(r.dynamic)),
        ("entry", u(r.entry as u64)),
        ("candidates", r.candidates.to_value()),
        ("scores", r.scores.to_value()),
        ("theta_hat", Value::Float(r.theta_hat)),
        ("theta2_star", Value::Float(r.theta2_star)),
        ("chosen", u(r.chosen as u64)),
        ("on_master", Value::Bool(r.on_master)),
        ("redirected", Value::Bool(r.redirected)),
        ("latency_us", u(r.latency_us)),
        ("req", u(r.req)),
        ("at_us", u(r.at_us)),
        ("demand_us", u(r.demand_us)),
        ("w", Value::Float(r.w)),
        ("expected_us", u(r.expected_us)),
        ("masters_ok", Value::Bool(r.masters_ok)),
        ("restart", Value::Bool(r.restart)),
    ];
    if let Some(region) = r.region {
        fields.push(("origin", u(r.origin as u64)));
        fields.push(("region", u(region as u64)));
    }
    tagged("decision", fields)
}

/// Encode one event as a compact single-line JSON object (no trailing
/// newline). [`parse_line`] inverts this exactly.
pub fn encode_event(event: &TraceEvent) -> String {
    let value = match event {
        TraceEvent::Decision(r) => decision_value(r),
        TraceEvent::Meta(m) => {
            let mut fields = vec![
                ("substrate", Value::Str(m.substrate.clone())),
                ("p", u(m.p as u64)),
                ("m", u(m.m as u64)),
                ("policy", Value::Str(m.policy.clone())),
                (
                    "spec",
                    match &m.spec {
                        Some(s) => Value::Str(s.clone()),
                        None => Value::Null,
                    },
                ),
                ("seed", u(m.seed)),
                ("a0", Value::Float(m.a0)),
                ("r0", Value::Float(m.r0)),
                ("master_reserve", Value::Float(m.master_reserve)),
                ("dns_skew", Value::Float(m.dns_skew)),
                ("monitor_period_us", u(m.monitor_period_us)),
                ("remote_latency_us", u(m.remote_latency_us)),
                ("redirect_rtt_us", u(m.redirect_rtt_us)),
                (
                    "speeds",
                    match &m.speeds {
                        Some(s) => s.to_value(),
                        None => Value::Null,
                    },
                ),
            ];
            if let Some(regions) = &m.regions {
                fields.push(("regions", regions.to_value()));
            }
            tagged("meta", fields)
        }
        TraceEvent::Complete {
            req,
            node,
            dynamic,
            response_us,
        } => tagged(
            "complete",
            vec![
                ("req", u(*req)),
                ("node", u(*node as u64)),
                ("dynamic", Value::Bool(*dynamic)),
                ("response_us", u(*response_us)),
            ],
        ),
        TraceEvent::Tick { at_us, rho, nodes } => tagged(
            "tick",
            vec![
                ("at_us", u(*at_us)),
                ("rho", Value::Float(*rho)),
                (
                    "nodes",
                    Value::Array(
                        nodes
                            .iter()
                            .map(|n| {
                                Value::Array(vec![
                                    u(n.cpu_busy_us),
                                    u(n.disk_busy_us),
                                    Value::Float(n.mem_free_ratio),
                                    u(n.ready_len as u64),
                                    u(n.disk_queue_len as u64),
                                    u(n.processes as u64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ],
        ),
        TraceEvent::NodeDown { node } => tagged("node-down", vec![("node", u(*node as u64))]),
        TraceEvent::NodeUp { node } => tagged("node-up", vec![("node", u(*node as u64))]),
        TraceEvent::Drop(d) => {
            let mut fields = vec![
                ("req", u(d.req)),
                ("at_us", u(d.at_us)),
                ("dynamic", Value::Bool(d.dynamic)),
                ("w", Value::Float(d.w)),
                ("expected_us", u(d.expected_us)),
                ("redrive", Value::Bool(d.redrive)),
                ("restart", Value::Bool(d.restart)),
            ];
            if d.origin != 0 {
                fields.push(("origin", u(d.origin as u64)));
            }
            tagged("drop", fields)
        }
        TraceEvent::Alert {
            at_us,
            rule,
            signal,
            windows,
            burn_rate,
            observed,
            budget,
        } => tagged(
            "alert",
            vec![
                ("at_us", u(*at_us)),
                ("rule", Value::Str(rule.clone())),
                ("signal", Value::Str(signal.clone())),
                ("windows", u(*windows)),
                ("burn_rate", Value::Float(*burn_rate)),
                ("observed", Value::Float(*observed)),
                ("budget", Value::Float(*budget)),
            ],
        ),
        TraceEvent::Unknown { ev } => tagged(ev, vec![]),
    };
    value.to_json()
}

// -------------------------------------------------------------- parsing

/// Typed view over a parsed JSON object with field-level error messages.
struct Obj<'a> {
    ev: &'a str,
    fields: &'a [(String, Value)],
}

impl<'a> Obj<'a> {
    fn get(&self, key: &str) -> Result<&'a Value, String> {
        self.opt(key)
            .ok_or_else(|| format!("{} event missing field {key:?}", self.ev))
    }

    /// Optional field lookup for fields written conditionally (the
    /// region extensions): absence is `None`, not an error.
    fn opt(&self, key: &str) -> Option<&'a Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)?
            .as_u64()
            .ok_or_else(|| format!("{} field {key:?} is not an unsigned integer", self.ev))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        Ok(self.u64(key)? as usize)
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)?
            .as_f64()
            .ok_or_else(|| format!("{} field {key:?} is not a number", self.ev))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        self.get(key)?
            .as_bool()
            .ok_or_else(|| format!("{} field {key:?} is not a boolean", self.ev))
    }

    fn str(&self, key: &str) -> Result<String, String> {
        Ok(self
            .get(key)?
            .as_str()
            .ok_or_else(|| format!("{} field {key:?} is not a string", self.ev))?
            .to_string())
    }

    fn usize_array(&self, key: &str) -> Result<Vec<usize>, String> {
        self.get(key)?
            .as_array()
            .ok_or_else(|| format!("{} field {key:?} is not an array", self.ev))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| format!("{} field {key:?} has a non-integer item", self.ev))
            })
            .collect()
    }

    fn f64_array(&self, key: &str) -> Result<Vec<f64>, String> {
        self.get(key)?
            .as_array()
            .ok_or_else(|| format!("{} field {key:?} is not an array", self.ev))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("{} field {key:?} has a non-number item", self.ev))
            })
            .collect()
    }

    /// Collect warnings for fields outside `known` (forward compat:
    /// a newer writer added fields this version does not understand).
    fn warn_unknown(&self, known: &[&str], warnings: &mut Vec<String>) {
        for (k, _) in self.fields {
            if k != "v" && k != "ev" && !known.contains(&k.as_str()) {
                warnings.push(format!("{} event has unknown field {k:?}", self.ev));
            }
        }
    }
}

const DECISION_FIELDS: &[&str] = &[
    "seq",
    "dynamic",
    "entry",
    "candidates",
    "scores",
    "theta_hat",
    "theta2_star",
    "chosen",
    "on_master",
    "redirected",
    "latency_us",
    "req",
    "at_us",
    "demand_us",
    "w",
    "expected_us",
    "masters_ok",
    "restart",
    "origin",
    "region",
];

/// Parse a decision object. `v1` relaxes the v2-only fields to their
/// defaults (old logs predate them).
fn parse_decision(o: &Obj<'_>, v1: bool) -> Result<DecisionRecord, String> {
    let seq = o.u64("seq")?;
    Ok(DecisionRecord {
        seq,
        dynamic: o.bool("dynamic")?,
        entry: o.usize("entry")?,
        candidates: o.usize_array("candidates")?,
        scores: o.f64_array("scores")?,
        theta_hat: o.f64("theta_hat")?,
        theta2_star: o.f64("theta2_star")?,
        chosen: o.usize("chosen")?,
        on_master: o.bool("on_master")?,
        redirected: o.bool("redirected")?,
        latency_us: o.u64("latency_us")?,
        req: if v1 { seq } else { o.u64("req")? },
        at_us: if v1 { 0 } else { o.u64("at_us")? },
        demand_us: if v1 { 0 } else { o.u64("demand_us")? },
        w: if v1 { 0.0 } else { o.f64("w")? },
        expected_us: if v1 { 0 } else { o.u64("expected_us")? },
        masters_ok: if v1 { true } else { o.bool("masters_ok")? },
        restart: if v1 { false } else { o.bool("restart")? },
        origin: match o.opt("origin") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| "decision field \"origin\" is not an unsigned integer".to_string())?
                as usize,
        },
        region: match o.opt("region") {
            None | Some(Value::Null) => None,
            Some(v) => {
                Some(v.as_u64().ok_or_else(|| {
                    "decision field \"region\" is not an unsigned integer".to_string()
                })? as usize)
            }
        },
    })
}

/// Parse one JSONL line into a [`TraceEvent`].
///
/// Returns the event plus any warnings: schema-v1 lines, unknown
/// fields, and newer-than-supported versions all parse with a warning
/// instead of failing, so old and future logs stay readable. Only
/// malformed JSON or a known event missing a required field is an
/// error.
pub fn parse_line(line: &str) -> Result<(TraceEvent, Vec<String>), String> {
    let value = Value::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let fields = value
        .as_object()
        .ok_or_else(|| "line is not a JSON object".to_string())?;
    let mut warnings = Vec::new();

    let ev_tag = value.get("ev").and_then(Value::as_str);
    let Some(ev) = ev_tag else {
        // No "ev": a schema-v1 bare DecisionRecord line.
        if value.get("seq").is_none() {
            return Err("line has neither an \"ev\" tag nor a v1 \"seq\" field".to_string());
        }
        warnings.push("schema v1 decision record: replay fields defaulted".to_string());
        let o = Obj {
            ev: "decision",
            fields,
        };
        o.warn_unknown(DECISION_FIELDS, &mut warnings);
        return Ok((TraceEvent::Decision(parse_decision(&o, true)?), warnings));
    };

    match value.get("v").and_then(Value::as_u64) {
        Some(v) if v > TRACE_SCHEMA_VERSION => warnings.push(format!(
            "schema v{v} is newer than supported v{TRACE_SCHEMA_VERSION}; parsing best-effort"
        )),
        Some(_) => {}
        None => warnings.push("tagged event without a \"v\" version field".to_string()),
    }

    let o = Obj { ev, fields };
    let event = match ev {
        "decision" => {
            o.warn_unknown(DECISION_FIELDS, &mut warnings);
            TraceEvent::Decision(parse_decision(&o, false)?)
        }
        "meta" => {
            o.warn_unknown(
                &[
                    "substrate",
                    "p",
                    "m",
                    "policy",
                    "spec",
                    "seed",
                    "a0",
                    "r0",
                    "master_reserve",
                    "dns_skew",
                    "monitor_period_us",
                    "remote_latency_us",
                    "redirect_rtt_us",
                    "speeds",
                    "regions",
                ],
                &mut warnings,
            );
            TraceEvent::Meta(RunMeta {
                substrate: o.str("substrate")?,
                p: o.usize("p")?,
                m: o.usize("m")?,
                policy: o.str("policy")?,
                spec: match o.get("spec")? {
                    Value::Null => None,
                    v => Some(
                        v.as_str()
                            .ok_or_else(|| "meta field \"spec\" is not a string".to_string())?
                            .to_string(),
                    ),
                },
                seed: o.u64("seed")?,
                a0: o.f64("a0")?,
                r0: o.f64("r0")?,
                master_reserve: o.f64("master_reserve")?,
                dns_skew: o.f64("dns_skew")?,
                monitor_period_us: o.u64("monitor_period_us")?,
                remote_latency_us: o.u64("remote_latency_us")?,
                redirect_rtt_us: o.u64("redirect_rtt_us")?,
                speeds: match o.get("speeds")? {
                    Value::Null => None,
                    _ => Some(o.f64_array("speeds")?),
                },
                regions: match o.opt("regions") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(
                        RegionTopology::from_value(v)
                            .map_err(|e| format!("meta field \"regions\": {e}"))?,
                    ),
                },
            })
        }
        "complete" => {
            o.warn_unknown(&["req", "node", "dynamic", "response_us"], &mut warnings);
            TraceEvent::Complete {
                req: o.u64("req")?,
                node: o.usize("node")?,
                dynamic: o.bool("dynamic")?,
                response_us: o.u64("response_us")?,
            }
        }
        "tick" => {
            o.warn_unknown(&["at_us", "rho", "nodes"], &mut warnings);
            let nodes = o
                .get("nodes")?
                .as_array()
                .ok_or_else(|| "tick field \"nodes\" is not an array".to_string())?
                .iter()
                .map(|row| {
                    let cols = row
                        .as_array()
                        .filter(|c| c.len() == 6)
                        .ok_or_else(|| "tick node row is not a 6-element array".to_string())?;
                    Ok(NodeSample {
                        cpu_busy_us: cols[0]
                            .as_u64()
                            .ok_or_else(|| "tick cpu_busy_us not an integer".to_string())?,
                        disk_busy_us: cols[1]
                            .as_u64()
                            .ok_or_else(|| "tick disk_busy_us not an integer".to_string())?,
                        mem_free_ratio: cols[2]
                            .as_f64()
                            .ok_or_else(|| "tick mem_free_ratio not a number".to_string())?,
                        ready_len: cols[3]
                            .as_u64()
                            .ok_or_else(|| "tick ready_len not an integer".to_string())?
                            as usize,
                        disk_queue_len: cols[4]
                            .as_u64()
                            .ok_or_else(|| "tick disk_queue_len not an integer".to_string())?
                            as usize,
                        processes: cols[5]
                            .as_u64()
                            .ok_or_else(|| "tick processes not an integer".to_string())?
                            as usize,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            TraceEvent::Tick {
                at_us: o.u64("at_us")?,
                rho: o.f64("rho")?,
                nodes,
            }
        }
        "node-down" => {
            o.warn_unknown(&["node"], &mut warnings);
            TraceEvent::NodeDown {
                node: o.usize("node")?,
            }
        }
        "node-up" => {
            o.warn_unknown(&["node"], &mut warnings);
            TraceEvent::NodeUp {
                node: o.usize("node")?,
            }
        }
        "drop" => {
            o.warn_unknown(
                &[
                    "req",
                    "at_us",
                    "dynamic",
                    "w",
                    "expected_us",
                    "redrive",
                    "restart",
                    "origin",
                ],
                &mut warnings,
            );
            TraceEvent::Drop(DropRecord {
                req: o.u64("req")?,
                at_us: o.u64("at_us")?,
                dynamic: o.bool("dynamic")?,
                w: o.f64("w")?,
                expected_us: o.u64("expected_us")?,
                redrive: o.bool("redrive")?,
                restart: o.bool("restart")?,
                origin: match o.opt("origin") {
                    None => 0,
                    Some(v) => v.as_u64().ok_or_else(|| {
                        "drop field \"origin\" is not an unsigned integer".to_string()
                    })? as usize,
                },
            })
        }
        "alert" => {
            o.warn_unknown(
                &[
                    "at_us",
                    "rule",
                    "signal",
                    "windows",
                    "burn_rate",
                    "observed",
                    "budget",
                ],
                &mut warnings,
            );
            TraceEvent::Alert {
                at_us: o.u64("at_us")?,
                rule: o.str("rule")?,
                signal: o.str("signal")?,
                windows: o.u64("windows")?,
                burn_rate: o.f64("burn_rate")?,
                observed: o.f64("observed")?,
                budget: o.f64("budget")?,
            }
        }
        other => {
            warnings.push(format!("unknown event tag {other:?}: skipped"));
            TraceEvent::Unknown {
                ev: other.to_string(),
            }
        }
    };
    Ok((event, warnings))
}

/// A fully parsed decision log.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// The events, in file order.
    pub events: Vec<TraceEvent>,
    /// Parse warnings, each prefixed with its 1-based line number.
    pub warnings: Vec<String>,
}

impl TraceLog {
    /// Parse every non-empty line of `text`; see [`parse_line`] for the
    /// warning-vs-error contract.
    pub fn parse(text: &str) -> Result<TraceLog, String> {
        let mut log = TraceLog::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (event, warnings) = parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            log.events.push(event);
            log.warnings
                .extend(warnings.into_iter().map(|w| format!("line {}: {w}", i + 1)));
        }
        Ok(log)
    }

    /// Read and parse a JSONL decision log from `path`.
    pub fn read(path: impl AsRef<Path>) -> io::Result<TraceLog> {
        let text = std::fs::read_to_string(path)?;
        TraceLog::parse(&text).map_err(io::Error::other)
    }
}

// ------------------------------------------------------------ observers

/// Observer invoked once per successful placement and once per
/// scheduler-state event (completion, tick, liveness change, drop).
///
/// Implementations should be cheap: the scheduler calls this on the
/// per-request path (though only when an observer is installed).
pub trait DecisionObserver {
    /// Handle one decision record.
    fn observe(&mut self, record: &DecisionRecord);

    /// Handle one non-decision event. The default ignores it, so
    /// pre-existing observers that only care about placements keep
    /// working unchanged.
    fn event(&mut self, event: &TraceEvent) {
        let _ = event;
    }
}

/// In-memory observer collecting every record; useful for tests and
/// programmatic analysis.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// Records observed so far, in decision order.
    pub records: Vec<DecisionRecord>,
    /// Non-decision events observed so far, in emission order.
    pub events: Vec<TraceEvent>,
}

impl DecisionObserver for CollectingObserver {
    fn observe(&mut self, record: &DecisionRecord) {
        self.records.push(record.clone());
    }
    fn event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Shared-handle observer: lets a test (or analysis code) keep a clone
/// of the collector while the scheduler owns the installed copy.
impl DecisionObserver for std::rc::Rc<std::cell::RefCell<CollectingObserver>> {
    fn observe(&mut self, record: &DecisionRecord) {
        self.borrow_mut().observe(record);
    }
    fn event(&mut self, event: &TraceEvent) {
        self.borrow_mut().event(event);
    }
}

/// JSONL sink: one [`TraceEvent`] serialised per line (schema v2).
///
/// Write errors after creation are reported once to stderr and further
/// records are discarded — tracing must never abort an experiment.
pub struct JsonlSink<W: Write> {
    writer: W,
    errored: bool,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Open the JSONL file at `path` for appending, creating it if
    /// missing — lets several runs trace into one file.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            errored: false,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.errored {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{line}") {
            eprintln!("trace-decisions: write failed, disabling sink: {e}");
            self.errored = true;
        }
    }
}

impl<W: Write> DecisionObserver for JsonlSink<W> {
    fn observe(&mut self, record: &DecisionRecord) {
        let line = decision_value(record).to_json();
        self.write_line(&line);
    }
    fn event(&mut self, event: &TraceEvent) {
        let line = encode_event(event);
        self.write_line(&line);
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> DecisionRecord {
        DecisionRecord {
            seq: 7,
            dynamic: true,
            entry: 2,
            candidates: vec![3, 1, 4],
            scores: vec![0.5, 0.25, 1.75],
            theta_hat: 0.125,
            theta2_star: 0.5,
            chosen: 1,
            on_master: false,
            redirected: false,
            latency_us: 1000,
            req: 42,
            at_us: 123_456,
            demand_us: 8_000,
            w: 0.85,
            expected_us: 16_000,
            masters_ok: true,
            restart: false,
            origin: 0,
            region: None,
        }
    }

    #[test]
    fn decision_round_trips() {
        let event = TraceEvent::Decision(sample_record());
        let line = encode_event(&event);
        let (parsed, warnings) = parse_line(&line).unwrap();
        assert_eq!(parsed, event);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            TraceEvent::Meta(RunMeta {
                substrate: "sim".into(),
                p: 8,
                m: 3,
                policy: "ms".into(),
                spec: Some(
                    "rotation-masters/reservation/level-split/rsrc-indexed-reserve/split-demand"
                        .into(),
                ),
                seed: 42,
                a0: 0.13,
                r0: 0.025,
                master_reserve: 0.5,
                dns_skew: 0.0,
                monitor_period_us: 500_000,
                remote_latency_us: 1000,
                redirect_rtt_us: 80_000,
                speeds: Some(vec![1.0, 2.0]),
                regions: None,
            }),
            TraceEvent::Complete {
                req: 9,
                node: 4,
                dynamic: true,
                response_us: 52_000,
            },
            TraceEvent::Tick {
                at_us: 500_000,
                rho: 0.75,
                nodes: vec![NodeSample {
                    cpu_busy_us: 40_000,
                    disk_busy_us: 10_000,
                    mem_free_ratio: 0.9,
                    ready_len: 2,
                    disk_queue_len: 1,
                    processes: 3,
                }],
            },
            TraceEvent::NodeDown { node: 5 },
            TraceEvent::NodeUp { node: 5 },
            TraceEvent::Drop(DropRecord {
                req: 11,
                at_us: 900_000,
                dynamic: true,
                w: 0.6,
                expected_us: 16_000,
                redrive: true,
                restart: false,
                origin: 0,
            }),
            TraceEvent::Alert {
                at_us: 2_500_000,
                rule: "stretch-burn".into(),
                signal: "stretch".into(),
                windows: 6,
                burn_rate: 2.0,
                observed: 3.25,
                budget: 1.5,
            },
        ];
        for event in events {
            let line = encode_event(&event);
            let (parsed, warnings) = parse_line(&line).unwrap();
            assert_eq!(parsed, event, "line: {line}");
            assert!(warnings.is_empty(), "{warnings:?}");
        }
    }

    #[test]
    fn region_fields_round_trip_and_stay_off_regionless_lines() {
        // Regionless decisions must not grow the origin/region keys —
        // the 20-key line schema is a fixture contract.
        let plain = encode_event(&TraceEvent::Decision(sample_record()));
        assert!(!plain.contains("\"origin\""), "{plain}");
        assert!(!plain.contains("\"region\""), "{plain}");

        let mut tagged = sample_record();
        tagged.origin = 2;
        tagged.region = Some(1);
        let event = TraceEvent::Decision(tagged);
        let line = encode_event(&event);
        let (parsed, warnings) = parse_line(&line).unwrap();
        assert_eq!(parsed, event);
        assert!(warnings.is_empty(), "{warnings:?}");

        let meta = TraceEvent::Meta(RunMeta {
            substrate: "sim".into(),
            p: 12,
            m: 3,
            policy: "ms".into(),
            spec: Some("region-nearest/rotation-masters/reservation/level-split/rsrc-indexed-reserve/split-demand".into()),
            seed: 7,
            a0: 0.13,
            r0: 0.025,
            master_reserve: 0.5,
            dns_skew: 0.0,
            monitor_period_us: 500_000,
            remote_latency_us: 1000,
            redirect_rtt_us: 80_000,
            speeds: None,
            regions: Some(RegionTopology::even(12, 3, 3)),
        });
        let line = encode_event(&meta);
        let (parsed, warnings) = parse_line(&line).unwrap();
        assert_eq!(parsed, meta);
        assert!(warnings.is_empty(), "{warnings:?}");

        // Drops carry the origin only when it is non-zero.
        let mut drop = DropRecord {
            req: 11,
            at_us: 900_000,
            dynamic: true,
            w: 0.6,
            expected_us: 16_000,
            redrive: true,
            restart: false,
            origin: 0,
        };
        let plain = encode_event(&TraceEvent::Drop(drop.clone()));
        assert!(!plain.contains("\"origin\""), "{plain}");
        drop.origin = 3;
        let event = TraceEvent::Drop(drop);
        let line = encode_event(&event);
        assert!(line.contains("\"origin\":3"), "{line}");
        let (parsed, warnings) = parse_line(&line).unwrap();
        assert_eq!(parsed, event);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn v1_line_parses_with_warning() {
        // A bare DecisionRecord object exactly as the v1 sink wrote it.
        let line = r#"{"seq":3,"dynamic":true,"entry":1,"candidates":[2,0],"scores":[1.5,2.5],"theta_hat":0.1,"theta2_star":0.4,"chosen":2,"on_master":false,"redirected":false,"latency_us":1000}"#;
        let (event, warnings) = parse_line(line).unwrap();
        let TraceEvent::Decision(r) = event else {
            panic!("expected decision");
        };
        assert_eq!(r.seq, 3);
        assert_eq!(r.req, 3, "v1 defaults req to seq");
        assert_eq!(r.w, 0.0);
        assert!(r.masters_ok);
        assert!(!r.restart);
        assert!(
            warnings.iter().any(|w| w.contains("v1")),
            "expected a v1 warning, got {warnings:?}"
        );
    }

    #[test]
    fn unknown_field_warns_but_parses() {
        let mut line = encode_event(&TraceEvent::NodeDown { node: 1 });
        line.truncate(line.len() - 1);
        line.push_str(",\"flux\":9}");
        let (event, warnings) = parse_line(&line).unwrap();
        assert_eq!(event, TraceEvent::NodeDown { node: 1 });
        assert!(warnings.iter().any(|w| w.contains("flux")), "{warnings:?}");
    }

    #[test]
    fn newer_version_warns_but_parses() {
        let line = r#"{"v":99,"ev":"node-up","node":2}"#;
        let (event, warnings) = parse_line(line).unwrap();
        assert_eq!(event, TraceEvent::NodeUp { node: 2 });
        assert!(warnings.iter().any(|w| w.contains("newer")), "{warnings:?}");
    }

    #[test]
    fn unknown_event_becomes_unknown_with_warning() {
        let line = r#"{"v":2,"ev":"wormhole","x":1}"#;
        let (event, warnings) = parse_line(line).unwrap();
        assert_eq!(
            event,
            TraceEvent::Unknown {
                ev: "wormhole".into()
            }
        );
        assert!(!warnings.is_empty());
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("[1,2]").is_err());
        assert!(parse_line(r#"{"x":1}"#).is_err());
        // Known event missing a required field is an error, not a warning.
        assert!(parse_line(r#"{"v":2,"ev":"complete","req":1}"#).is_err());
    }

    #[test]
    fn sink_writes_parseable_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.event(&TraceEvent::NodeDown { node: 0 });
            sink.observe(&sample_record());
        }
        let text = String::from_utf8(buf).unwrap();
        let log = TraceLog::parse(&text).unwrap();
        assert_eq!(log.events.len(), 2);
        assert!(log.warnings.is_empty());
        assert_eq!(
            log.events[1],
            TraceEvent::Decision(sample_record()),
            "sink decision line must round-trip"
        );
    }
}
