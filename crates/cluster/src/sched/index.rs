//! Incrementally maintained decision index over [`LoadMonitor`] state.
//!
//! The dense RSRC scan rescores every candidate per placement: O(p) per
//! decision, the scaling bottleneck ROADMAP flagged at p ≥ 128. This
//! module replaces the scan with a *tournament tree over decomposed
//! cost keys* that answers the same argmin query in O(log p) typical
//! time while returning **bit-identical placements**.
//!
//! # How it works
//!
//! [`CostKey`] (see [`crate::rsrc`]) splits a node's reserved RSRC cost
//! into the two denominators of Eq. 5, making the cost *linear in the
//! request weight*: `cost(w) = w·inv_cpu + (1−w)·inv_disk` where
//! `inv_* = 1/denom`. The pointwise minimum of linear functions is
//! concave in `w`, so over any subtree the min-cost envelope
//! `g(w) = min_leaf cost(w)` lies **on or above the chord** between any
//! two of its points. Every tree node therefore stores `g` evaluated at
//! a small fixed grid of weights; a query at weight `w` lower-bounds the
//! subtree by the chord of the grid segment containing `w`:
//!
//! ```text
//! g(w) ≥ g(wₖ) + t·(g(wₖ₊₁) − g(wₖ)),   t = (w − wₖ)/(wₖ₊₁ − wₖ)
//! ```
//!
//! (The coarse two-point form — `w·min(inv_cpu) + (1−w)·min(inv_disk)`,
//! i.e. the chord of the whole `[0, 1]` interval with the endpoint
//! minima taken componentwise — is also valid but prunes far worse: the
//! componentwise minima may come from *different* leaves, so the bound
//! can sit well below every actual cost in the subtree.)
//!
//! The grid values merge upward as plain minima (for each fixed `wₖ`,
//! `min` over a union is the `min` of the parts' minima), so the tree
//! stays a complete binary tree (leaves = nodes, padded to a power of
//! two) with O(1) merges. Queries find the exact minimum by best-first
//! branch-and-bound: descend a subtree only while its bound can still
//! beat the best exact leaf cost seen. Leaves are evaluated with
//! [`CostKey::eval`], whose float operations match the dense scan's bit
//! for bit; the bound itself is only used to *prune*, scaled by a
//! safety margin so rounding in the bound arithmetic can never prune
//! the true argmin.
//!
//! # Staying byte-identical to the shuffled dense scan
//!
//! The dense scan shuffles the candidate buffer and keeps the *first*
//! occurrence of the minimum cost, so tie-breaking is part of the
//! golden-fixture contract. The query therefore tracks, in its single
//! branch-and-bound pass, whether the minimum it found is tied: pruning
//! is strict (every leaf of a skipped subtree costs strictly more than
//! the final minimum), so leaves tying the minimum are always visited
//! and can be counted along the way. A unique minimiser is returned
//! directly; on a tie the shuffled
//! candidate order is replayed and the first candidate whose key
//! evaluates to the minimum wins — exactly the node the dense scan
//! would have kept, at the price of a scan only when a tie actually
//! exists.
//!
//! # Degenerate windows
//!
//! Exactness has a worst case: within one monitor window, charges
//! water-fill the cheapest nodes up to a common cost level, and *any*
//! exact argmin must inspect that whole plateau. When a query ends up
//! evaluating a sizeable fraction of its candidates the index flags the
//! window [`degenerate`](RsrcIndex::degenerate); the scorer then
//! answers with the dense scan (cheaper constants, same placement)
//! until the next tick rebuilds the tree and clears the flag. The
//! index is thus never slower than the dense scan by more than one
//! flagged query per window.
//!
//! # Keeping the mirror fresh
//!
//! The index never subscribes to anything; it *reconciles* lazily at
//! query time from the change log the monitor publishes (see
//! [`LoadMonitor`]): a new monitor id or epoch, a changed master count
//! or a liveness change rebuilds in O(p); fresh entries in the charge
//! log re-key just the charged nodes in O(log p) each. Ticks are O(p)
//! events already (the monitor rewrites every ratio), so the rebuild
//! does not change their complexity class.
//!
//! [`LoadMonitor`]: crate::loadinfo::LoadMonitor

use super::StageCtx;
use crate::rsrc::CostKey;

/// Candidate-set sizes below this use the dense scan even when an index
/// is available: the reconciliation checks and tree bookkeeping cost
/// more than rescoring a handful of nodes.
pub const INDEX_MIN_CANDIDATES: usize = 16;

/// Relative safety margin applied to subtree lower bounds before they
/// are compared against exact leaf costs. The chord interpolation is a
/// handful of float operations over values whose dynamic range is
/// capped by the `MIN_RATIO` clamp in [`crate::rsrc`], so its relative
/// rounding error sits many orders of magnitude below this margin —
/// while the margin itself is far too small to cost measurable pruning
/// power (distinct costs differ by much more than one part in 10⁹).
const BOUND_MARGIN: f64 = 1e-9;

/// Number of fixed weights the min-cost envelope is tabulated at. More
/// points tighten the chord bounds (the envelope is concave, so the gap
/// shrinks quadratically with segment width) at the price of a wider
/// tree node; five keeps a node in one cache line.
const GRID: usize = 5;

/// The tabulation weights: a uniform grid over the valid weight range
/// `[0, 1]` ([`crate::rsrc::RsrcPredictor::effective_w`] clamps into
/// it, which is what makes the chord bound applicable to every query).
const W_GRID: [f64; GRID] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Per-tree-node summary: the subtree's min-cost envelope sampled at
/// [`W_GRID`], plus how many live leaves it covers.
#[derive(Debug, Clone, Copy)]
struct TreeNode {
    /// `min(cost(wₖ))` over live leaves below; `+∞` when none.
    evals: [f64; GRID],
    /// Number of live leaves below.
    live: u32,
}

/// Summary of an empty subtree (dead nodes, power-of-two padding).
const EMPTY: TreeNode = TreeNode {
    evals: [f64::INFINITY; GRID],
    live: 0,
};

fn merge(a: TreeNode, b: TreeNode) -> TreeNode {
    let mut evals = a.evals;
    for (e, o) in evals.iter_mut().zip(b.evals) {
        *e = e.min(o);
    }
    TreeNode {
        evals,
        live: a.live + b.live,
    }
}

fn leaf(key: CostKey) -> TreeNode {
    let mut evals = [0.0; GRID];
    for (e, w) in evals.iter_mut().zip(W_GRID) {
        *e = key.eval(w);
    }
    TreeNode { evals, live: 1 }
}

/// The decision index; see the [module docs](self).
///
/// One instance mirrors one monitor's view for one scorer
/// configuration (a fixed master reserve). It sizes itself on first
/// [`RsrcIndex::sync`] and tracks cluster size, monitor identity and
/// master count thereafter, so a single instance embedded in a scorer
/// survives being handed a different monitor mid-flight (it just
/// rebuilds).
#[derive(Debug, Clone)]
pub struct RsrcIndex {
    /// Cluster size the tree is built for.
    p: usize,
    /// First leaf slot: `tree[base + i]` is node `i`'s leaf.
    base: usize,
    /// Master count the keys were computed with.
    m: usize,
    /// CPU fraction withheld from masters when computing keys.
    master_reserve: f64,
    /// Per-node decomposed cost keys (kept for dead nodes too, so a
    /// revival only needs a sift, and tie resolution can evaluate any
    /// candidate).
    keys: Vec<CostKey>,
    /// 1-indexed complete binary tree of subtree summaries.
    tree: Vec<TreeNode>,
    /// Monitor identity the mirror was built from.
    seen_monitor: u64,
    /// Monitor epoch the mirror was built at.
    seen_epoch: u64,
    /// Charge-log prefix already folded into the mirror.
    seen_charges: usize,
    /// Scheduler liveness epoch the mirror was built at.
    seen_liveness: u64,
    /// Scratch stack for branch-and-bound descents, carrying each
    /// pushed node's precomputed bound.
    stack: Vec<(usize, f64)>,
    /// Scratch buffer for the canonical range decomposition that seeds
    /// a descent.
    range_scratch: Vec<usize>,
    /// Set when the last query had to evaluate a large fraction of its
    /// candidates exactly (a near-tie cost plateau, typical late in a
    /// heavily charged window). Cleared by the next rebuild (tick).
    degenerate: bool,
}

impl RsrcIndex {
    /// Empty index for a scorer holding back `master_reserve` on
    /// masters; sizes itself on first [`RsrcIndex::sync`].
    pub fn new(master_reserve: f64) -> Self {
        RsrcIndex {
            p: 0,
            base: 1,
            m: 0,
            master_reserve,
            keys: Vec::new(),
            tree: Vec::new(),
            seen_monitor: u64::MAX,
            seen_epoch: u64::MAX,
            seen_charges: 0,
            seen_liveness: u64::MAX,
            stack: Vec::new(),
            range_scratch: Vec::new(),
            degenerate: false,
        }
    }

    /// Whether the last query degenerated into near-exhaustive leaf
    /// evaluation, making a dense scan the cheaper way to answer
    /// further queries in this monitor window. Scorers consult this
    /// *after* [`RsrcIndex::sync`] (a rebuild clears it) and may score
    /// densely while it holds — both paths compute the identical
    /// placement, so the switch is invisible to fixtures.
    ///
    /// The plateau this detects is structural: within a window, charges
    /// water-fill the cheapest nodes up to a common cost level, so an
    /// *exact* argmin — indexed or not — must inspect every plateau
    /// member. Once that plateau covers a sizeable share of the
    /// candidates, the tree's per-leaf visit overhead loses to the
    /// dense scan's sequential sweep; the next tick rewrites every
    /// ratio, dissolves the plateau and re-arms the index.
    pub fn degenerate(&self) -> bool {
        self.degenerate
    }

    fn reserve_for(&self, node: usize) -> f64 {
        if node < self.m {
            self.master_reserve
        } else {
            0.0
        }
    }

    /// Reconcile the mirror with the monitor state in `ctx`: rebuild on
    /// any wholesale change (different monitor, new epoch, changed
    /// cluster shape or liveness), sift just the freshly charged nodes
    /// otherwise.
    pub fn sync(&mut self, ctx: &StageCtx<'_>) {
        let p = ctx.nodes();
        let stale = self.p != p
            || self.m != ctx.masters
            || self.seen_monitor != ctx.monitor_id
            || self.seen_epoch != ctx.load_epoch
            || self.seen_liveness != ctx.liveness_epoch
            || self.seen_charges > ctx.charge_log.len();
        if stale {
            self.rebuild(ctx);
        } else if self.seen_charges < ctx.charge_log.len() {
            for k in self.seen_charges..ctx.charge_log.len() {
                self.refresh_node(ctx.charge_log[k] as usize, ctx);
            }
            self.seen_charges = ctx.charge_log.len();
        }
    }

    /// Rebuild keys and tree from scratch: O(p).
    fn rebuild(&mut self, ctx: &StageCtx<'_>) {
        let p = ctx.nodes();
        self.p = p;
        self.m = ctx.masters;
        self.base = p.next_power_of_two().max(1);
        self.keys.clear();
        let (m, reserve) = (self.m, self.master_reserve);
        self.keys.extend((0..p).map(|i| {
            let r = if i < m { reserve } else { 0.0 };
            ctx.rsrc.key(i, &ctx.loads[i], r)
        }));
        self.tree.clear();
        self.tree.resize(2 * self.base, EMPTY);
        for i in 0..p {
            if !ctx.dead[i] {
                self.tree[self.base + i] = leaf(self.keys[i]);
            }
        }
        for t in (1..self.base).rev() {
            self.tree[t] = merge(self.tree[2 * t], self.tree[2 * t + 1]);
        }
        self.seen_monitor = ctx.monitor_id;
        self.seen_epoch = ctx.load_epoch;
        self.seen_liveness = ctx.liveness_epoch;
        self.seen_charges = ctx.charge_log.len();
        self.degenerate = false;
    }

    /// Re-key one node and sift its leaf-to-root path: O(log p).
    fn refresh_node(&mut self, i: usize, ctx: &StageCtx<'_>) {
        if i >= self.p {
            return;
        }
        self.keys[i] = ctx.rsrc.key(i, &ctx.loads[i], self.reserve_for(i));
        let mut t = self.base + i;
        self.tree[t] = if ctx.dead[i] {
            EMPTY
        } else {
            leaf(self.keys[i])
        };
        while t > 1 {
            t /= 2;
            self.tree[t] = merge(self.tree[2 * t], self.tree[2 * t + 1]);
        }
    }

    /// Number of live nodes in `[lo, hi)`, from the tree: O(log p).
    pub fn live_count(&self, lo: usize, hi: usize) -> usize {
        let mut total = 0usize;
        let mut l = lo + self.base;
        let mut r = hi + self.base;
        while l < r {
            if l & 1 == 1 {
                total += self.tree[l].live as usize;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                total += self.tree[r].live as usize;
            }
            l >>= 1;
            r >>= 1;
        }
        total
    }

    /// Push the canonical segment-tree decomposition of `[lo, hi)` onto
    /// the scratch stack.
    fn push_range(stack: &mut Vec<usize>, base: usize, lo: usize, hi: usize) {
        let mut l = lo + base;
        let mut r = hi + base;
        while l < r {
            if l & 1 == 1 {
                stack.push(l);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                stack.push(r);
            }
            l >>= 1;
            r >>= 1;
        }
    }

    /// Precomputed chord coefficients for one query weight `w`: the
    /// grid segment containing `w` and the two margin-deflated blend
    /// weights, so a subtree's lower bound is two multiplies and an
    /// add: `c0·evals[s] + c1·evals[s+1]`; see the [module docs](self).
    /// Only meaningful for `live > 0` nodes (callers skip empty
    /// subtrees first, so the `∞ · 0` the padding summaries could
    /// produce never arises).
    #[inline]
    fn chord(w: f64) -> (usize, f64, f64) {
        let s = ((w * (GRID - 1) as f64) as usize).min(GRID - 2);
        let t = (w - W_GRID[s]) / (W_GRID[s + 1] - W_GRID[s]);
        (
            s,
            (1.0 - t) * (1.0 - BOUND_MARGIN),
            t * (1.0 - BOUND_MARGIN),
        )
    }

    /// The node of minimum reserved RSRC cost among live nodes in
    /// `[lo, hi)`, tie-broken exactly like the shuffled dense scan:
    /// on a cost tie, the first of `shuffled` achieving the minimum
    /// wins. `w` is the request's *effective* CPU weight. Returns
    /// `None` when the range holds no live node.
    ///
    /// `shuffled` must be the shuffled candidate buffer whose members
    /// are exactly the live nodes of `[lo, hi)` — callers check this
    /// via [`RsrcIndex::live_count`] before committing to the indexed
    /// path.
    pub fn choose_in_range(
        &mut self,
        lo: usize,
        hi: usize,
        w: f64,
        shuffled: &[usize],
    ) -> Option<usize> {
        // Single best-first pass finds the exact minimum, one argmin,
        // and whether the minimum is tied. Tie counting in the same
        // pass is sound because pruning is *strict*: a subtree is
        // skipped only when its (margin-deflated) lower bound exceeds
        // the running `best`, which only ever decreases — so every leaf
        // in a skipped subtree costs strictly more than the final
        // minimum and cannot be a tie. Each node's bound rides on the
        // stack so it is computed exactly once; `live == 0` subtrees
        // (dead or padding) are dropped at push time, before their ±∞
        // summaries can meet a `0 · ∞` for w ∈ {0, 1}.
        let mut best = f64::INFINITY;
        let mut best_node = usize::MAX;
        let mut ties = 0u32;
        let mut visited = 0u32;
        let (s, c0, c1) = Self::chord(w);
        let bound = |n: &TreeNode| c0 * n.evals[s] + c1 * n.evals[s + 1];
        // Exact leaf evaluation, inlined where a parent of leaves is
        // expanded so leaves skip the stack round-trip entirely.
        macro_rules! eval_leaf {
            ($i:expr) => {{
                let i = $i;
                let c = self.keys[i].eval(w);
                visited += 1;
                if c < best {
                    best = c;
                    best_node = i;
                    ties = 1;
                } else if c == best {
                    ties += 1;
                }
            }};
        }
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        {
            let mut seed = std::mem::take(&mut self.range_scratch);
            seed.clear();
            Self::push_range(&mut seed, self.base, lo, hi);
            for &t in &seed {
                let n = &self.tree[t];
                if n.live > 0 {
                    if t >= self.base {
                        eval_leaf!(t - self.base);
                    } else {
                        stack.push((t, bound(n)));
                    }
                }
            }
            self.range_scratch = seed;
        }
        let leaf_parents = self.base / 2; // t ≥ this ⇒ children are leaves
        while let Some((t, b)) = stack.pop() {
            if b > best {
                continue;
            }
            if t >= leaf_parents {
                for child in [2 * t, 2 * t + 1] {
                    if self.tree[child].live > 0 && bound(&self.tree[child]) <= best {
                        eval_leaf!(child - self.base);
                    }
                }
            } else {
                let (a, c) = (&self.tree[2 * t], &self.tree[2 * t + 1]);
                let ba = if a.live > 0 { bound(a) } else { f64::INFINITY };
                let bc = if c.live > 0 { bound(c) } else { f64::INFINITY };
                // Explore the cheaper-bounded child first (it is popped
                // last-in-first-out) so `best` tightens quickly; a dead
                // or hopeless child is never pushed at all.
                let (first, second) = if ba <= bc {
                    ((2 * t, ba), (2 * t + 1, bc))
                } else {
                    ((2 * t + 1, bc), (2 * t, ba))
                };
                if second.1.is_finite() {
                    stack.push(second);
                }
                if first.1.is_finite() {
                    stack.push(first);
                }
            }
        }
        self.stack = stack;
        // A branch-and-bound visit costs a small multiple of a dense
        // scan's per-element sweep, so evaluating a quarter of the
        // candidates through the tree already ties the scan: flag the
        // window as degenerate and let the scorer go dense until the
        // next tick (see [`RsrcIndex::degenerate`]).
        self.degenerate = visited as usize * 4 >= shuffled.len();
        if best_node == usize::MAX {
            return None;
        }
        if ties <= 1 {
            return Some(best_node);
        }

        // Tied minimum: replay the shuffled order the dense scan would
        // have used and keep its first minimiser. Ties concentrate in
        // fresh, evenly loaded windows where the first few shuffled
        // candidates already achieve the minimum, so this scan is short
        // in practice. The `.or()` fallback is unreachable when the
        // caller upheld the candidate-set contract.
        shuffled
            .iter()
            .copied()
            .find(|&c| self.keys[c].eval(w) == best)
            .or(Some(best_node))
    }
}
