//! Periodically updated load information (the `rstat()` substitute).
//!
//! "In selecting the best node for dynamic content processing, we use
//! periodically-updated I/O and CPU load information" (§4). The monitor
//! samples every node's cumulative busy counters on a fixed period and
//! differences successive samples into windowed CPU-idle and
//! disk-available ratios. Between ticks the dispatcher sees *stale*
//! values — exactly the staleness a real rstat-based collector has, and
//! the subject of one of the ablation benches.

use std::sync::atomic::{AtomicU64, Ordering};

use msweb_ossim::LoadSnapshot;
use msweb_simcore::{SimDuration, SimTime};

/// Ratios are clamped here so the RSRC division never explodes.
pub const MIN_RATIO: f64 = 0.01;

/// Nodes per shard when the tick refresh runs parallel: small enough to
/// balance a 10k-node fleet across cores, large enough to amortize the
/// per-chunk dispatch.
const TICK_SHARD_CHUNK: usize = 512;

/// Process-wide allocator for [`LoadMonitor`] instance ids. Ids only
/// need to be unique, never dense or ordered, so a relaxed counter is
/// enough.
static MONITOR_IDS: AtomicU64 = AtomicU64::new(1);

fn next_monitor_id() -> u64 {
    MONITOR_IDS.fetch_add(1, Ordering::Relaxed)
}

/// One node's view as of the last monitor tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// Fraction of CPU time idle over the last window, in [MIN_RATIO, 1].
    pub cpu_idle_ratio: f64,
    /// Fraction of disk bandwidth available over the last window.
    pub disk_avail_ratio: f64,
    /// Fraction of memory free at the tick.
    pub mem_free_ratio: f64,
    /// Live processes at the tick.
    pub processes: usize,
}

impl Default for NodeLoad {
    fn default() -> Self {
        NodeLoad {
            cpu_idle_ratio: 1.0,
            disk_avail_ratio: 1.0,
            mem_free_ratio: 1.0,
            processes: 0,
        }
    }
}

/// The cluster-wide load monitor.
///
/// Besides the windowed ratios themselves, the monitor publishes a
/// *change log* consumers can use to mirror its state incrementally
/// (the decision index in [`crate::sched::index`] does):
///
/// * [`LoadMonitor::epoch`] — bumped whenever the whole view is
///   replaced (a tick). A consumer seeing a new epoch must rebuild.
/// * [`LoadMonitor::charges`] — node indices debited by
///   [`LoadMonitor::charge`] since the last tick, in order. A consumer
///   that already saw a prefix of the log only re-reads the suffix.
/// * [`LoadMonitor::id`] — process-unique instance id, so a consumer
///   handed a *different* monitor (or a clone) at the same epoch does
///   not mistake it for the one it indexed.
#[derive(Debug)]
pub struct LoadMonitor {
    period: SimDuration,
    last_tick: SimTime,
    /// Width of the window the current ratios were measured over.
    /// Equals `period` when ticks arrive on schedule; differs when a
    /// tick is late or early (live emulation).
    last_window: SimDuration,
    /// Bumped on every view replacement (tick, or charge-log overflow).
    epoch: u64,
    /// Process-unique instance id; fresh for every `new` and `clone`.
    id: u64,
    /// Nodes charged since the last tick, in charge order.
    charge_log: Vec<u32>,
    prev: Vec<LoadSnapshot>,
    current: Vec<NodeLoad>,
}

impl Clone for LoadMonitor {
    fn clone(&self) -> Self {
        LoadMonitor {
            period: self.period,
            last_tick: self.last_tick,
            last_window: self.last_window,
            epoch: self.epoch,
            // A clone diverges from the original the moment either is
            // mutated, so it must not share the original's identity —
            // consumers keyed on (id, epoch) would read stale state.
            id: next_monitor_id(),
            charge_log: self.charge_log.clone(),
            prev: self.prev.clone(),
            current: self.current.clone(),
        }
    }
}

impl LoadMonitor {
    /// Create for `p` nodes with the given sampling period. Initial view:
    /// everything idle.
    pub fn new(p: usize, period: SimDuration, t0: SimTime) -> Self {
        assert!(!period.is_zero(), "monitor period must be positive");
        LoadMonitor {
            period,
            last_tick: t0,
            last_window: period,
            epoch: 0,
            id: next_monitor_id(),
            charge_log: Vec::new(),
            prev: vec![
                LoadSnapshot {
                    at: t0,
                    cpu_busy: SimDuration::ZERO,
                    disk_busy: SimDuration::ZERO,
                    mem_free_ratio: 1.0,
                    ready_len: 0,
                    disk_queue_len: 0,
                    processes: 0,
                };
                p
            ],
            current: vec![NodeLoad::default(); p],
        }
    }

    /// When the next tick is due.
    pub fn next_tick(&self) -> SimTime {
        self.last_tick + self.period
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Ingest fresh snapshots at tick time `now` (one per node, in node
    /// order) and recompute the windowed ratios.
    ///
    /// A tick with a zero-width window (duplicate or out-of-order
    /// timestamp, which live emulation can produce) is a no-op: there is
    /// no interval to difference over, and overwriting `prev` would
    /// silently drop the busy time accrued since the last real tick from
    /// the next window's difference.
    pub fn tick(&mut self, now: SimTime, snapshots: &[LoadSnapshot]) {
        self.tick_with_workers(now, snapshots, 1);
    }

    /// [`LoadMonitor::tick`] with the per-node windowed-ratio refresh
    /// sharded across up to `workers` threads (`0` = all cores, `1` =
    /// inline). Each node's ratios are a pure function of its own
    /// previous and current snapshot, so the result is bit-identical to
    /// the sequential tick at any worker count — sharding only buys
    /// wall-clock at large `p`.
    pub fn tick_with_workers(&mut self, now: SimTime, snapshots: &[LoadSnapshot], workers: usize) {
        assert_eq!(snapshots.len(), self.prev.len(), "node count changed");
        let window = now.since(self.last_tick);
        if window.is_zero() {
            return;
        }
        let window_s = window.as_secs_f64();
        let prev = &self.prev;
        let refresh = |i: usize, snap: &LoadSnapshot| {
            let cpu_busy = snap.cpu_busy.saturating_sub(prev[i].cpu_busy).as_secs_f64() / window_s;
            let disk_busy = snap
                .disk_busy
                .saturating_sub(prev[i].disk_busy)
                .as_secs_f64()
                / window_s;
            NodeLoad {
                cpu_idle_ratio: (1.0 - cpu_busy).clamp(MIN_RATIO, 1.0),
                disk_avail_ratio: (1.0 - disk_busy).clamp(MIN_RATIO, 1.0),
                mem_free_ratio: snap.mem_free_ratio,
                processes: snap.processes,
            }
        };
        self.current = if workers == 1 {
            snapshots
                .iter()
                .enumerate()
                .map(|(i, s)| refresh(i, s))
                .collect()
        } else {
            msweb_simcore::chunked_map(snapshots, TICK_SHARD_CHUNK, workers, refresh)
        };
        self.prev.copy_from_slice(snapshots);
        self.last_tick = now;
        self.last_window = window;
        self.epoch += 1;
        self.charge_log.clear();
    }

    /// Charge an expected placement against the stale view of node `i`.
    ///
    /// Pure periodic sampling causes a *herd effect*: every dynamic
    /// request in a window lands on whichever node looked idlest at the
    /// last tick, saturating it. The paper's load managers live on the
    /// masters and know what they dispatched, so the dispatcher debits
    /// each placement's expected CPU/disk demand (class means from
    /// off-line sampling) from its local copy until the next tick
    /// refreshes the truth.
    ///
    /// The debit is taken against the *actual* width of the window the
    /// current ratios were measured over (see [`LoadMonitor::tick`]),
    /// not the nominal period: when a tick arrives late the ratios
    /// describe a wider interval, and dividing by the nominal period
    /// would overstate every placement's share of it (and conversely
    /// for an early tick).
    pub fn charge(&mut self, i: usize, cpu: SimDuration, disk: SimDuration) {
        let window = self.last_window.as_secs_f64();
        let n = &mut self.current[i];
        n.cpu_idle_ratio = (n.cpu_idle_ratio - cpu.as_secs_f64() / window).clamp(MIN_RATIO, 1.0);
        n.disk_avail_ratio =
            (n.disk_avail_ratio - disk.as_secs_f64() / window).clamp(MIN_RATIO, 1.0);
        if self.charge_log.len() >= self.charge_log_cap() {
            // Unbounded monitor windows (a driver that stops ticking)
            // must not grow the log forever. Fold the log into a fresh
            // epoch instead: incremental consumers rebuild once.
            self.charge_log.clear();
            self.epoch += 1;
        }
        self.charge_log.push(i as u32);
    }

    fn charge_log_cap(&self) -> usize {
        (8 * self.current.len()).max(64)
    }

    /// The (stale) view of node `i`.
    pub fn node(&self, i: usize) -> &NodeLoad {
        &self.current[i]
    }

    /// All node views.
    pub fn all(&self) -> &[NodeLoad] {
        &self.current
    }

    /// Process-unique instance id (fresh for every `new` and `clone`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// View-replacement counter; see the type-level docs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes debited by [`LoadMonitor::charge`] since the last tick, in
    /// charge order. Valid only for the current [`LoadMonitor::epoch`].
    pub fn charges(&self) -> &[u32] {
        &self.charge_log
    }

    /// Width of the window the current ratios were measured over.
    pub fn last_window(&self) -> SimDuration {
        self.last_window
    }

    /// Mean utilisation across the cluster for the current window:
    /// per-node CPU busy fraction plus disk busy fraction, averaged over
    /// nodes. This is the ρ estimate both substrates feed the
    /// reservation controller on every monitor tick.
    pub fn mean_utilisation(&self) -> f64 {
        let busy: f64 = self
            .current
            .iter()
            .map(|l| (1.0 - l.cpu_idle_ratio) + (1.0 - l.disk_avail_ratio))
            .sum();
        busy / self.current.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: SimTime, cpu_ms: u64, disk_ms: u64) -> LoadSnapshot {
        LoadSnapshot {
            at,
            cpu_busy: SimDuration::from_millis(cpu_ms),
            disk_busy: SimDuration::from_millis(disk_ms),
            mem_free_ratio: 0.8,
            ready_len: 1,
            disk_queue_len: 0,
            processes: 1,
        }
    }

    #[test]
    fn initial_view_is_idle() {
        let m = LoadMonitor::new(3, SimDuration::from_millis(500), SimTime::ZERO);
        for i in 0..3 {
            assert_eq!(m.node(i).cpu_idle_ratio, 1.0);
            assert_eq!(m.node(i).disk_avail_ratio, 1.0);
        }
        assert_eq!(m.next_tick(), SimTime::from_millis(500));
    }

    #[test]
    fn windowed_ratios() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(500), SimTime::ZERO);
        // 200ms CPU busy and 100ms disk busy over a 500ms window.
        m.tick(
            SimTime::from_millis(500),
            &[snap(SimTime::from_millis(500), 200, 100)],
        );
        let n = m.node(0);
        assert!((n.cpu_idle_ratio - 0.6).abs() < 1e-9);
        assert!((n.disk_avail_ratio - 0.8).abs() < 1e-9);
        assert_eq!(n.processes, 1);

        // Second window: another 50ms CPU (cumulative 250), disk idle.
        m.tick(
            SimTime::from_secs(1),
            &[snap(SimTime::from_secs(1), 250, 100)],
        );
        let n = m.node(0);
        assert!((n.cpu_idle_ratio - 0.9).abs() < 1e-9);
        assert!((n.disk_avail_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fully_busy_clamps_at_min_ratio() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(100), SimTime::ZERO);
        m.tick(
            SimTime::from_millis(100),
            &[snap(SimTime::from_millis(100), 100, 100)],
        );
        assert_eq!(m.node(0).cpu_idle_ratio, MIN_RATIO);
        assert_eq!(m.node(0).disk_avail_ratio, MIN_RATIO);
    }

    #[test]
    fn next_tick_advances() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(100), SimTime::ZERO);
        m.tick(
            SimTime::from_millis(100),
            &[snap(SimTime::from_millis(100), 0, 0)],
        );
        assert_eq!(m.next_tick(), SimTime::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn node_count_mismatch_panics() {
        let mut m = LoadMonitor::new(2, SimDuration::from_millis(100), SimTime::ZERO);
        m.tick(
            SimTime::from_millis(100),
            &[snap(SimTime::from_millis(100), 0, 0)],
        );
    }

    #[test]
    fn zero_width_tick_does_not_drop_accrued_busy_time() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(500), SimTime::ZERO);
        m.tick(
            SimTime::from_millis(500),
            &[snap(SimTime::from_millis(500), 100, 0)],
        );
        let view = *m.node(0);

        // Duplicate timestamp with counters that have since advanced.
        // Before the fix this overwrote `prev` with cpu_busy=150ms, so
        // 50ms of accrued busy time vanished from the next difference.
        m.tick(
            SimTime::from_millis(500),
            &[snap(SimTime::from_millis(500), 150, 0)],
        );
        assert_eq!(*m.node(0), view, "zero-width tick must not change the view");
        assert_eq!(m.next_tick(), SimTime::from_millis(1000));

        // Next real tick: 350 − 100 = 250ms busy over 500ms → idle 0.5.
        // The buggy version differenced against 150 → idle 0.6.
        m.tick(
            SimTime::from_millis(1000),
            &[snap(SimTime::from_millis(1000), 350, 0)],
        );
        assert!((m.node(0).cpu_idle_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn late_tick_charge_debits_against_actual_window() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(500), SimTime::ZERO);
        // Tick arrives 250ms late: the ratios describe a 750ms window.
        m.tick(
            SimTime::from_millis(750),
            &[snap(SimTime::from_millis(750), 0, 0)],
        );
        assert_eq!(m.last_window(), SimDuration::from_millis(750));
        // A 75ms CPU debit is 10% of the actual window, not 15% of the
        // nominal period.
        m.charge(0, SimDuration::from_millis(75), SimDuration::ZERO);
        assert!((m.node(0).cpu_idle_ratio - 0.9).abs() < 1e-9);
    }

    #[test]
    fn change_log_tracks_ticks_charges_and_identity() {
        let mut m = LoadMonitor::new(2, SimDuration::from_millis(500), SimTime::ZERO);
        let e0 = m.epoch();
        m.charge(1, SimDuration::from_millis(5), SimDuration::ZERO);
        m.charge(0, SimDuration::from_millis(5), SimDuration::ZERO);
        assert_eq!(m.charges(), &[1, 0]);
        assert_eq!(m.epoch(), e0);

        // A tick replaces the view: new epoch, empty log.
        m.tick(
            SimTime::from_millis(500),
            &[
                snap(SimTime::from_millis(500), 0, 0),
                snap(SimTime::from_millis(500), 0, 0),
            ],
        );
        assert_eq!(m.epoch(), e0 + 1);
        assert!(m.charges().is_empty());

        // Log overflow folds into a fresh epoch rather than growing
        // without bound (cap for 2 nodes is the 64-entry floor).
        for _ in 0..=64 {
            m.charge(0, SimDuration::from_micros(1), SimDuration::ZERO);
        }
        assert_eq!(m.epoch(), e0 + 2);
        assert_eq!(m.charges(), &[0]);

        // Clones get their own identity.
        assert_ne!(m.clone().id(), m.id());
    }

    #[test]
    fn mean_utilisation_averages_busy_fractions() {
        let mut m = LoadMonitor::new(2, SimDuration::from_millis(500), SimTime::ZERO);
        assert!((m.mean_utilisation() - 0.0).abs() < 1e-12);
        m.tick(
            SimTime::from_millis(500),
            &[
                snap(SimTime::from_millis(500), 250, 0), // busy 0.5 + 0.0
                snap(SimTime::from_millis(500), 0, 250), // busy 0.0 + 0.5
            ],
        );
        assert!((m.mean_utilisation() - 0.5).abs() < 1e-9);
    }
}
