//! Periodically updated load information (the `rstat()` substitute).
//!
//! "In selecting the best node for dynamic content processing, we use
//! periodically-updated I/O and CPU load information" (§4). The monitor
//! samples every node's cumulative busy counters on a fixed period and
//! differences successive samples into windowed CPU-idle and
//! disk-available ratios. Between ticks the dispatcher sees *stale*
//! values — exactly the staleness a real rstat-based collector has, and
//! the subject of one of the ablation benches.

use msweb_ossim::LoadSnapshot;
use msweb_simcore::{SimDuration, SimTime};

/// Ratios are clamped here so the RSRC division never explodes.
pub const MIN_RATIO: f64 = 0.01;

/// One node's view as of the last monitor tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// Fraction of CPU time idle over the last window, in [MIN_RATIO, 1].
    pub cpu_idle_ratio: f64,
    /// Fraction of disk bandwidth available over the last window.
    pub disk_avail_ratio: f64,
    /// Fraction of memory free at the tick.
    pub mem_free_ratio: f64,
    /// Live processes at the tick.
    pub processes: usize,
}

impl Default for NodeLoad {
    fn default() -> Self {
        NodeLoad {
            cpu_idle_ratio: 1.0,
            disk_avail_ratio: 1.0,
            mem_free_ratio: 1.0,
            processes: 0,
        }
    }
}

/// The cluster-wide load monitor.
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    period: SimDuration,
    last_tick: SimTime,
    prev: Vec<LoadSnapshot>,
    current: Vec<NodeLoad>,
}

impl LoadMonitor {
    /// Create for `p` nodes with the given sampling period. Initial view:
    /// everything idle.
    pub fn new(p: usize, period: SimDuration, t0: SimTime) -> Self {
        assert!(!period.is_zero(), "monitor period must be positive");
        LoadMonitor {
            period,
            last_tick: t0,
            prev: vec![
                LoadSnapshot {
                    at: t0,
                    cpu_busy: SimDuration::ZERO,
                    disk_busy: SimDuration::ZERO,
                    mem_free_ratio: 1.0,
                    ready_len: 0,
                    disk_queue_len: 0,
                    processes: 0,
                };
                p
            ],
            current: vec![NodeLoad::default(); p],
        }
    }

    /// When the next tick is due.
    pub fn next_tick(&self) -> SimTime {
        self.last_tick + self.period
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Ingest fresh snapshots at tick time `now` (one per node, in node
    /// order) and recompute the windowed ratios.
    pub fn tick(&mut self, now: SimTime, snapshots: &[LoadSnapshot]) {
        assert_eq!(snapshots.len(), self.prev.len(), "node count changed");
        let window = now.since(self.last_tick).as_secs_f64();
        for (i, snap) in snapshots.iter().enumerate() {
            if window > 0.0 {
                let cpu_busy = snap
                    .cpu_busy
                    .saturating_sub(self.prev[i].cpu_busy)
                    .as_secs_f64()
                    / window;
                let disk_busy = snap
                    .disk_busy
                    .saturating_sub(self.prev[i].disk_busy)
                    .as_secs_f64()
                    / window;
                self.current[i] = NodeLoad {
                    cpu_idle_ratio: (1.0 - cpu_busy).clamp(MIN_RATIO, 1.0),
                    disk_avail_ratio: (1.0 - disk_busy).clamp(MIN_RATIO, 1.0),
                    mem_free_ratio: snap.mem_free_ratio,
                    processes: snap.processes,
                };
            }
            self.prev[i] = *snap;
        }
        self.last_tick = now;
    }

    /// Charge an expected placement against the stale view of node `i`.
    ///
    /// Pure periodic sampling causes a *herd effect*: every dynamic
    /// request in a window lands on whichever node looked idlest at the
    /// last tick, saturating it. The paper's load managers live on the
    /// masters and know what they dispatched, so the dispatcher debits
    /// each placement's expected CPU/disk demand (class means from
    /// off-line sampling) from its local copy until the next tick
    /// refreshes the truth.
    pub fn charge(&mut self, i: usize, cpu: SimDuration, disk: SimDuration) {
        let window = self.period.as_secs_f64();
        let n = &mut self.current[i];
        n.cpu_idle_ratio = (n.cpu_idle_ratio - cpu.as_secs_f64() / window).clamp(MIN_RATIO, 1.0);
        n.disk_avail_ratio =
            (n.disk_avail_ratio - disk.as_secs_f64() / window).clamp(MIN_RATIO, 1.0);
    }

    /// The (stale) view of node `i`.
    pub fn node(&self, i: usize) -> &NodeLoad {
        &self.current[i]
    }

    /// All node views.
    pub fn all(&self) -> &[NodeLoad] {
        &self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at: SimTime, cpu_ms: u64, disk_ms: u64) -> LoadSnapshot {
        LoadSnapshot {
            at,
            cpu_busy: SimDuration::from_millis(cpu_ms),
            disk_busy: SimDuration::from_millis(disk_ms),
            mem_free_ratio: 0.8,
            ready_len: 1,
            disk_queue_len: 0,
            processes: 1,
        }
    }

    #[test]
    fn initial_view_is_idle() {
        let m = LoadMonitor::new(3, SimDuration::from_millis(500), SimTime::ZERO);
        for i in 0..3 {
            assert_eq!(m.node(i).cpu_idle_ratio, 1.0);
            assert_eq!(m.node(i).disk_avail_ratio, 1.0);
        }
        assert_eq!(m.next_tick(), SimTime::from_millis(500));
    }

    #[test]
    fn windowed_ratios() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(500), SimTime::ZERO);
        // 200ms CPU busy and 100ms disk busy over a 500ms window.
        m.tick(
            SimTime::from_millis(500),
            &[snap(SimTime::from_millis(500), 200, 100)],
        );
        let n = m.node(0);
        assert!((n.cpu_idle_ratio - 0.6).abs() < 1e-9);
        assert!((n.disk_avail_ratio - 0.8).abs() < 1e-9);
        assert_eq!(n.processes, 1);

        // Second window: another 50ms CPU (cumulative 250), disk idle.
        m.tick(
            SimTime::from_secs(1),
            &[snap(SimTime::from_secs(1), 250, 100)],
        );
        let n = m.node(0);
        assert!((n.cpu_idle_ratio - 0.9).abs() < 1e-9);
        assert!((n.disk_avail_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fully_busy_clamps_at_min_ratio() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(100), SimTime::ZERO);
        m.tick(
            SimTime::from_millis(100),
            &[snap(SimTime::from_millis(100), 100, 100)],
        );
        assert_eq!(m.node(0).cpu_idle_ratio, MIN_RATIO);
        assert_eq!(m.node(0).disk_avail_ratio, MIN_RATIO);
    }

    #[test]
    fn next_tick_advances() {
        let mut m = LoadMonitor::new(1, SimDuration::from_millis(100), SimTime::ZERO);
        m.tick(
            SimTime::from_millis(100),
            &[snap(SimTime::from_millis(100), 0, 0)],
        );
        assert_eq!(m.next_tick(), SimTime::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "node count changed")]
    fn node_count_mismatch_panics() {
        let mut m = LoadMonitor::new(2, SimDuration::from_millis(100), SimTime::ZERO);
        m.tick(
            SimTime::from_millis(100),
            &[snap(SimTime::from_millis(100), 0, 0)],
        );
    }
}
