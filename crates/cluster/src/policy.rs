//! Request dispatch policies.
//!
//! The [`Dispatcher`] implements every contender of Section 5.2 behind
//! one interface. Placement of an arriving request proceeds in two hops,
//! as in the paper's architecture:
//!
//! 1. the front end (DNS rotation or a switch) hands the request to a
//!    uniformly random *entry* node — a master for the M/S family, any
//!    node for Flat/M/S′/M/S-1;
//! 2. the entry node processes static requests locally; for dynamic
//!    requests it picks the minimum-RSRC node among the candidates its
//!    policy allows (subject to the reservation limit), paying the remote
//!    CGI latency when the choice is not itself.

use msweb_simcore::{SimDuration, SimRng};

use crate::config::{ClusterConfig, PolicyKind};
use crate::loadinfo::LoadMonitor;
use crate::reservation::ReservationController;
use crate::rsrc::RsrcPredictor;

/// Where a request goes and what the transfer costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Target node index.
    pub node: usize,
    /// Extra latency before the target node starts the request (zero for
    /// local processing).
    pub latency: SimDuration,
    /// Whether the target counts as a master (for reservation accounting).
    pub on_master: bool,
}

/// The cluster's scheduling brain.
#[derive(Debug)]
pub struct Dispatcher {
    policy: PolicyKind,
    p: usize,
    /// Node indices 0..m are masters (m = p for Flat/M/S-1 entry
    /// purposes; the flag distinguishes semantics).
    m: usize,
    /// For M/S′: the nodes dynamic requests are pinned to.
    dynamic_nodes: Vec<usize>,
    rsrc: RsrcPredictor,
    /// Reservation controller (meaningful for the M/S family).
    pub reservation: ReservationController,
    remote_latency: SimDuration,
    redirect_rtt: SimDuration,
    /// Capacity share each master withholds from dynamic placement.
    master_reserve: f64,
    rng: SimRng,
    /// Scratch candidate buffer, reused across placements.
    candidates: Vec<usize>,
    /// Nodes currently marked dead (failure injection).
    dead: Vec<bool>,
    /// Open connections per node (placements minus completions) — the
    /// real-time count a load-balancing switch tracks.
    in_flight: Vec<u32>,
    /// DNS cache skew for entry selection (0 = uniform).
    dns_skew: f64,
}

impl Dispatcher {
    /// Build from a validated configuration plus the workload priors used
    /// to seed the reservation controller.
    pub fn new(config: &ClusterConfig, a0: f64, r0: f64) -> Self {
        config.validate().expect("invalid cluster configuration");
        let p = config.p;
        let m = config.resolve_masters();
        let use_sampling = config.policy != PolicyKind::MsNoSampling;
        let rsrc = match &config.speeds {
            Some(s) => RsrcPredictor::with_speeds(s.clone(), use_sampling),
            None => RsrcPredictor::homogeneous(p, use_sampling),
        };
        let enforce = !matches!(
            config.policy,
            PolicyKind::MsNoReservation | PolicyKind::Flat | PolicyKind::MsPrime
        );
        // Reservation bound needs 1 <= m <= p even for policies that
        // ignore it.
        let m_for_bound = m.clamp(1, p);
        let reservation = ReservationController::new(m_for_bound, p, a0, r0, enforce);
        // M/S': dynamic work pinned to the would-be slave set (the last
        // p - m nodes), static spread everywhere.
        let dynamic_nodes: Vec<usize> = if m < p { (m..p).collect() } else { (0..p).collect() };
        let master_reserve = if enforce { config.master_reserve } else { 0.0 };
        Dispatcher {
            policy: config.policy,
            p,
            m,
            dynamic_nodes,
            rsrc,
            reservation,
            remote_latency: config.remote_latency,
            redirect_rtt: config.redirect_rtt,
            master_reserve,
            rng: SimRng::seed_from_u64(config.seed ^ 0xd15b),
            candidates: Vec::with_capacity(p),
            dead: vec![false; p],
            in_flight: vec![0; p],
            dns_skew: config.dns_skew,
        }
    }

    /// Number of masters.
    pub fn masters(&self) -> usize {
        self.m
    }

    /// The policy in force.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Mark a node dead (no further placements) or alive again.
    pub fn set_dead(&mut self, node: usize, dead: bool) {
        self.dead[node] = dead;
    }

    /// True when `node` is currently dead.
    pub fn is_dead(&self, node: usize) -> bool {
        self.dead[node]
    }

    /// Notify the dispatcher that `node` finished one request (keeps the
    /// switch-style connection counts truthful).
    pub fn note_completion(&mut self, node: usize) {
        self.in_flight[node] = self.in_flight[node].saturating_sub(1);
    }

    /// Current open-connection count for `node`.
    pub fn in_flight(&self, node: usize) -> u32 {
        self.in_flight[node]
    }

    /// Draw an index in `[0, n)` with DNS-cache skew: weight of slot i is
    /// `(1 − skew)^i` (geometric concentration on the low-numbered,
    /// longest-cached addresses). skew = 0 degenerates to uniform.
    fn skewed_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if self.dns_skew <= 0.0 {
            return self.rng.gen_index(n);
        }
        let q = 1.0 - self.dns_skew;
        // Inverse CDF of the truncated geometric.
        let total = 1.0 - q.powi(n as i32);
        let u = self.rng.next_f64() * total;
        let idx = ((1.0 - u).ln() / q.ln()).floor() as usize;
        idx.min(n - 1)
    }

    /// A random live node from `lo..hi` (skewed by `dns_skew`); falls
    /// back to scanning the whole cluster when the whole range is dead.
    fn random_live(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        for _ in 0..8 {
            let n = lo + self.skewed_index(hi - lo);
            if !self.dead[n] {
                return n;
            }
        }
        // Dense fallback.
        let live: Vec<usize> = (lo..hi).filter(|&n| !self.dead[n]).collect();
        if live.is_empty() {
            let any: Vec<usize> = (0..self.p).filter(|&n| !self.dead[n]).collect();
            assert!(!any.is_empty(), "entire cluster is dead");
            *self.rng.choose(&any)
        } else {
            *self.rng.choose(&live)
        }
    }

    /// The entry node the front end would hand this request to.
    fn entry_node(&mut self) -> usize {
        match self.policy {
            // Flat / M/S-1 / M/S': DNS rotation over all nodes.
            PolicyKind::Flat | PolicyKind::MsAllMasters | PolicyKind::MsPrime => {
                self.random_live(0, self.p)
            }
            // Switch: least open connections over all live nodes, ties
            // random — the switch sees connection counts in real time.
            PolicyKind::Switch => {
                let mut best = usize::MAX;
                let mut best_count = u32::MAX;
                let start = self.rng.gen_index(self.p);
                for off in 0..self.p {
                    let n = (start + off) % self.p;
                    if !self.dead[n] && self.in_flight[n] < best_count {
                        best = n;
                        best_count = self.in_flight[n];
                    }
                }
                assert!(best != usize::MAX, "entire cluster is dead");
                best
            }
            // M/S family: over the master level.
            _ => self.random_live(0, self.m),
        }
    }

    /// Decide where a request runs. `dynamic` is the request class,
    /// `sampled_w` its off-line-sampled CPU weight, `expected_service`
    /// the class's mean demand (from off-line sampling; used to debit the
    /// stale load view so same-window placements spread), `monitor` the
    /// stale load view.
    pub fn place(
        &mut self,
        dynamic: bool,
        sampled_w: f64,
        expected_service: SimDuration,
        monitor: &mut LoadMonitor,
    ) -> Placement {
        let entry = self.entry_node();
        self.reservation.note_arrival(dynamic);
        if self.policy == PolicyKind::Switch {
            // The switch routes before anything looks at request class.
            self.in_flight[entry] += 1;
            monitor.charge(
                entry,
                expected_service.mul_f64(self.rsrc.effective_w(sampled_w)),
                SimDuration::ZERO,
            );
            return Placement {
                node: entry,
                latency: SimDuration::ZERO,
                on_master: false,
            };
        }
        let w = self.rsrc.effective_w(sampled_w);
        let cpu_charge = expected_service.mul_f64(w);
        let disk_charge = expected_service.saturating_sub(cpu_charge);

        if !dynamic {
            // Static requests are never re-scheduled: "it only takes a
            // very small amount of time to process".
            monitor.charge(entry, cpu_charge, disk_charge);
            self.in_flight[entry] += 1;
            return Placement {
                node: entry,
                latency: SimDuration::ZERO,
                on_master: entry < self.m,
            };
        }

        match self.policy {
            PolicyKind::Flat => {
                monitor.charge(entry, cpu_charge, disk_charge);
                self.in_flight[entry] += 1;
                Placement {
                    node: entry,
                    latency: SimDuration::ZERO,
                    on_master: false,
                }
            }
            PolicyKind::MsPrime => {
                // Pinned dynamic nodes; min-RSRC within the pin set.
                self.candidates.clear();
                let dyn_nodes = &self.dynamic_nodes;
                let dead = &self.dead;
                self.candidates
                    .extend(dyn_nodes.iter().copied().filter(|&n| !dead[n]));
                if self.candidates.is_empty() {
                    self.candidates.extend((0..self.p).filter(|&n| !dead[n]));
                }
                self.rng.shuffle(&mut self.candidates);
                let node = self
                    .rsrc
                    .select(self.candidates.iter(), monitor.all(), sampled_w)
                    .expect("no live node");
                monitor.charge(node, cpu_charge, disk_charge);
                self.in_flight[node] += 1;
                let latency = if node == entry {
                    SimDuration::ZERO
                } else {
                    self.remote_latency
                };
                Placement {
                    node,
                    latency,
                    on_master: false,
                }
            }
            _ => {
                // The M/S family: slaves always eligible; masters subject
                // to reservation (trivially satisfied for M/S-nr and
                // M/S-1, where theta2* enforcement is off or m = p).
                let masters_ok = self.m == self.p || self.reservation.master_eligible();
                self.candidates.clear();
                {
                    let dead = &self.dead;
                    let m = self.m;
                    self.candidates.extend((m..self.p).filter(|&n| !dead[n]));
                    if masters_ok {
                        self.candidates.extend((0..m).filter(|&n| !dead[n]));
                    }
                }
                if self.candidates.is_empty() {
                    let dead = &self.dead;
                    self.candidates.extend((0..self.p).filter(|&n| !dead[n]));
                }
                self.rng.shuffle(&mut self.candidates);
                let m = self.m;
                let reserve = self.master_reserve;
                let node = self
                    .rsrc
                    .select_with_reserve(
                        self.candidates.iter(),
                        monitor.all(),
                        sampled_w,
                        |n| if n < m { reserve } else { 0.0 },
                    )
                    .expect("no live node");
                monitor.charge(node, cpu_charge, disk_charge);
                self.in_flight[node] += 1;
                let on_master = node < self.m;
                self.reservation.note_placement(on_master);
                let latency = if node == entry {
                    SimDuration::ZERO
                } else if self.policy == PolicyKind::Redirect {
                    // HTTP redirection: the client bounces off the entry
                    // node and re-connects to the target.
                    self.redirect_rtt + self.remote_latency
                } else {
                    self.remote_latency
                };
                Placement {
                    node,
                    latency,
                    on_master,
                }
            }
        }
    }

    /// Re-place a request after its node died (failure recovery):
    /// min-RSRC among live nodes of the appropriate level.
    pub fn replace_after_failure(
        &mut self,
        dynamic: bool,
        sampled_w: f64,
        expected_service: SimDuration,
        monitor: &mut LoadMonitor,
    ) -> Placement {
        // Failure recovery always pays the remote latency.
        let mut placement = self.place(dynamic, sampled_w, expected_service, monitor);
        if placement.latency.is_zero() {
            placement.latency = self.remote_latency;
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msweb_simcore::SimTime;

    fn monitor(p: usize) -> LoadMonitor {
        LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO)
    }

    /// Mean demand used by the tests' charging path.
    fn svc() -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn dispatcher(policy: PolicyKind, p: usize, m: usize) -> Dispatcher {
        let mut cfg = ClusterConfig::simulation(p, policy);
        cfg.masters = crate::config::MasterSelection::Fixed(m);
        Dispatcher::new(&cfg, 0.25, 0.025)
    }

    #[test]
    fn static_requests_stay_on_masters_for_ms() {
        let mut d = dispatcher(PolicyKind::MasterSlave, 32, 8);
        let mut mon = monitor(32);
        for _ in 0..200 {
            let p = d.place(false, 0.5, svc(), &mut mon);
            assert!(p.node < 8, "static landed on slave {}", p.node);
            assert!(p.latency.is_zero());
            assert!(p.on_master);
        }
    }

    #[test]
    fn static_requests_spread_everywhere_for_flat_and_msprime() {
        for kind in [PolicyKind::Flat, PolicyKind::MsPrime, PolicyKind::MsAllMasters] {
            let mut d = dispatcher(kind, 16, 4);
            let mut mon = monitor(16);
            let mut seen = [false; 16];
            for _ in 0..800 {
                seen[d.place(false, 0.5, svc(), &mut mon).node] = true;
            }
            assert!(
                seen.iter().all(|&s| s),
                "{kind:?}: statics did not reach every node"
            );
        }
    }

    #[test]
    fn flat_never_redirects_dynamics() {
        let mut d = dispatcher(PolicyKind::Flat, 8, 2);
        let mut mon = monitor(8);
        for _ in 0..100 {
            let p = d.place(true, 0.9, svc(), &mut mon);
            assert!(p.latency.is_zero());
        }
    }

    #[test]
    fn msprime_pins_dynamics() {
        let mut d = dispatcher(PolicyKind::MsPrime, 16, 4);
        let mut mon = monitor(16);
        for _ in 0..200 {
            let p = d.place(true, 0.9, svc(), &mut mon);
            assert!(p.node >= 4, "dynamic on static node {}", p.node);
        }
    }

    #[test]
    fn ms_reservation_caps_master_placements() {
        let mut d = dispatcher(PolicyKind::MasterSlave, 32, 8);
        let mut mon = monitor(32);
        let theta = d.reservation.theta2_star();
        let mut on_master = 0;
        let n = 2000;
        for _ in 0..n {
            if d.place(true, 0.9, svc(), &mut mon).on_master {
                on_master += 1;
            }
        }
        let frac = on_master as f64 / n as f64;
        assert!(
            frac <= theta + 0.05,
            "master fraction {frac} exceeds theta2* {theta}"
        );
    }

    #[test]
    fn ms_nr_floods_masters_when_idle() {
        // Without reservation, an all-idle cluster gives masters the same
        // cost as slaves, so a material share of dynamics lands on them.
        let mut d = dispatcher(PolicyKind::MsNoReservation, 32, 8);
        let mut mon = monitor(32);
        let mut on_master = 0;
        for _ in 0..2000 {
            if d.place(true, 0.9, svc(), &mut mon).on_master {
                on_master += 1;
            }
        }
        let frac = on_master as f64 / 2000.0;
        // Uniform over 32 candidates would give 0.25.
        assert!(frac > 0.15, "M/S-nr placed only {frac} on masters");
    }

    #[test]
    fn remote_latency_charged_only_when_moving() {
        let mut d = dispatcher(PolicyKind::MasterSlave, 4, 2);
        let mut mon = monitor(4);
        for _ in 0..200 {
            let p = d.place(true, 0.9, svc(), &mut mon);
            if p.node >= 2 {
                assert_eq!(p.latency, SimDuration::from_millis(1));
            }
        }
    }

    #[test]
    fn redirect_pays_round_trip() {
        let mut d = dispatcher(PolicyKind::Redirect, 4, 1);
        let mut mon = monitor(4);
        let mut paid = false;
        for _ in 0..100 {
            let p = d.place(true, 0.9, svc(), &mut mon);
            if p.node != 0 {
                assert!(p.latency >= SimDuration::from_millis(80));
                paid = true;
            }
        }
        assert!(paid, "no dynamic request ever moved off the single master");
    }

    #[test]
    fn dead_nodes_are_avoided() {
        let mut d = dispatcher(PolicyKind::MasterSlave, 8, 2);
        let mut mon = monitor(8);
        d.set_dead(5, true);
        d.set_dead(6, true);
        for _ in 0..300 {
            let p = d.place(true, 0.5, svc(), &mut mon);
            assert!(p.node != 5 && p.node != 6);
            let s = d.place(false, 0.5, svc(), &mut mon);
            assert!(s.node != 5 && s.node != 6);
        }
        d.set_dead(5, false);
        assert!(!d.is_dead(5));
    }

    #[test]
    fn switch_balances_connection_counts() {
        let mut d = dispatcher(PolicyKind::Switch, 8, 1);
        let mut mon = monitor(8);
        // 64 placements with no completions: counts must be exactly even.
        for _ in 0..64 {
            d.place(false, 0.5, svc(), &mut mon);
        }
        for n in 0..8 {
            assert_eq!(d.in_flight(n), 8, "node {n} unbalanced");
        }
        // Completions free capacity and the switch reuses it first.
        d.note_completion(3);
        d.note_completion(3);
        let p = d.place(true, 0.9, svc(), &mut mon);
        assert_eq!(p.node, 3);
        assert!(p.latency.is_zero());
    }

    #[test]
    fn dns_skew_concentrates_entries() {
        let mut cfg = ClusterConfig::simulation(16, PolicyKind::Flat);
        cfg.dns_skew = 0.5;
        let mut d = Dispatcher::new(&cfg, 0.25, 0.025);
        let mut mon = monitor(16);
        let mut counts = [0u32; 16];
        for _ in 0..4000 {
            counts[d.place(false, 0.5, svc(), &mut mon).node] += 1;
        }
        // Geometric weights: node 0 should get about half the traffic and
        // the tail almost nothing.
        assert!(counts[0] > counts[4] * 4, "skew not applied: {counts:?}");
        assert!(counts[0] as f64 / 4000.0 > 0.3);
    }

    #[test]
    fn zero_skew_is_uniform() {
        let mut d = dispatcher(PolicyKind::Flat, 16, 1);
        let mut mon = monitor(16);
        let mut counts = [0u32; 16];
        for _ in 0..8000 {
            counts[d.place(false, 0.5, svc(), &mut mon).node] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            let freq = c as f64 / 8000.0;
            assert!((freq - 1.0 / 16.0).abs() < 0.02, "node {n} freq {freq}");
        }
    }

    #[test]
    fn failure_replacement_pays_latency() {
        let mut d = dispatcher(PolicyKind::MasterSlave, 8, 2);
        let mut mon = monitor(8);
        for _ in 0..50 {
            let p = d.replace_after_failure(true, 0.9, svc(), &mut mon);
            assert!(!p.latency.is_zero());
        }
    }
}
