//! Property-based tests for the cluster scheduler.

use msweb_cluster::sched::{encode_event, parse_line, DecisionRecord, RunMeta};
use msweb_cluster::{
    simulate, ClusterConfig, Dispatcher, DropRecord, LoadMonitor, NodeSample, PolicyKind,
    RegionTopology, ReqKnowledge, RunOptions, SchedulerRegistry, StageSpec, TraceEvent,
};
use msweb_simcore::{SimDuration, SimTime};
use msweb_workload::{ksu, ucb, DemandModel};
use proptest::prelude::*;

fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::MsNoSampling,
        PolicyKind::MsNoReservation,
        PolicyKind::MsAllMasters,
        PolicyKind::MsPrime,
        PolicyKind::Redirect,
        PolicyKind::Switch,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Placements always target a live node in range, for every policy,
    /// class mix, and dead-set.
    #[test]
    fn placements_are_valid(
        which in 0usize..8,
        p in 2usize..40,
        m_frac in 0.1f64..0.9,
        seed in any::<u64>(),
        dead_node in any::<Option<u8>>(),
    ) {
        let policy = policies()[which];
        let m = ((p as f64 * m_frac) as usize).clamp(1, p - 1);
        let mut cfg = ClusterConfig::simulation(p, policy);
        cfg = cfg.with_masters(m);
        cfg = cfg.with_seed(seed);
        let mut d = Dispatcher::new(&cfg, 0.3, 0.02);
        let mut mon = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
        let dead = dead_node.map(|n| n as usize % p);
        // Keep at least one node alive.
        if let Some(n) = dead {
            if p > 1 {
                d.set_dead(n, true);
            }
        }
        let svc = SimDuration::from_millis(10);
        for i in 0..200u64 {
            let dynamic = i % 3 == 0;
            let pl = d.place(dynamic, ReqKnowledge::exact(0.7, svc), &mut mon).unwrap();
            prop_assert!(pl.node < p, "node {} out of range", pl.node);
            if let Some(n) = dead {
                prop_assert!(pl.node != n, "{policy:?} placed on dead node");
            }
            if pl.on_master {
                prop_assert!(dynamic || pl.node < d.masters().max(p));
            }
        }
    }

    /// The reservation cap is respected by the M/S dispatcher: the
    /// master-placed fraction of dynamics never exceeds cap by more than
    /// one request's worth.
    #[test]
    fn reservation_cap_respected(p in 4usize..40, seed in any::<u64>()) {
        let m = (p / 4).max(1);
        let mut cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave);
        cfg = cfg.with_masters(m);
        cfg = cfg.with_seed(seed);
        let mut d = Dispatcher::new(&cfg, 0.3, 0.02);
        let mut mon = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
        let svc = SimDuration::from_millis(10);
        let n = 500;
        let mut on_master = 0u32;
        for _ in 0..n {
            if d.place(true, ReqKnowledge::exact(0.7, svc), &mut mon).unwrap().on_master {
                on_master += 1;
            }
        }
        let cap = d.reservation().theta2_star();
        let frac = on_master as f64 / n as f64;
        prop_assert!(
            frac <= cap + 2.0 / n as f64 + 1e-9,
            "master fraction {frac} exceeds cap {cap}"
        );
    }

    /// Dispatcher decisions are deterministic per seed.
    #[test]
    fn dispatcher_deterministic(seed in any::<u64>(), which in 0usize..8) {
        let policy = policies()[which];
        let run = || {
            let mut cfg = ClusterConfig::simulation(16, policy);
            cfg = cfg.with_masters(4);
            cfg = cfg.with_seed(seed);
            let mut d = Dispatcher::new(&cfg, 0.3, 0.02);
            let mut mon =
                LoadMonitor::new(16, SimDuration::from_millis(500), SimTime::ZERO);
            (0..100u64)
                .map(|i| {
                    d.place(i % 2 == 0, ReqKnowledge::exact(0.5, SimDuration::from_millis(5)), &mut mon)
                        .unwrap()
                        .node
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Full simulations: every request completes exactly once, stretch is
    /// at least ~1, class counts partition, for random small workloads
    /// under every policy.
    #[test]
    fn simulations_account_for_everything(
        which in 0usize..8,
        n in 100usize..600,
        lambda in 30.0f64..400.0,
        seed in any::<u64>(),
    ) {
        let policy = policies()[which];
        let trace = ucb()
            .generate(n, &DemandModel::simulation(40.0), seed)
            .scaled_to_rate(lambda);
        let mut cfg = ClusterConfig::simulation(8, policy);
        cfg = cfg.with_masters(3);
        cfg = cfg.with_seed(seed);
        let s = simulate(cfg, &trace, RunOptions::new()).summary;
        prop_assert_eq!(s.completed, n as u64);
        prop_assert_eq!(s.completed_static + s.completed_dynamic, n as u64);
        prop_assert!(s.stretch >= 0.99, "stretch {}", s.stretch);
        prop_assert_eq!(s.dropped, 0);
    }

    /// In-flight connection counts are conserved: after any interleaving
    /// of placements, completions and node failures, completing every
    /// outstanding request returns every per-node count to zero.
    #[test]
    fn in_flight_returns_to_zero(
        which in 0usize..8,
        seed in any::<u64>(),
        ops in proptest::collection::vec(0u8..4, 1..120),
    ) {
        let policy = policies()[which];
        let p = 8;
        let mut cfg = ClusterConfig::simulation(p, policy);
        cfg = cfg.with_masters(3);
        cfg = cfg.with_seed(seed);
        let mut d = Dispatcher::new(&cfg, 0.3, 0.02);
        let mut mon = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
        let svc = SimDuration::from_millis(10);
        // Nodes of requests placed but not yet completed.
        let mut outstanding: Vec<usize> = Vec::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                // Place a request (alternate static/dynamic).
                0 | 1 => {
                    if let Ok(pl) = d.place(step.is_multiple_of(2), ReqKnowledge::exact(0.6, svc), &mut mon) {
                        outstanding.push(pl.node);
                    }
                }
                // Complete the oldest outstanding request.
                2 => {
                    if !outstanding.is_empty() {
                        let node = outstanding.remove(0);
                        d.note_completion(node);
                    }
                }
                // Kill a node and re-place its outstanding work, as the
                // failure driver does.
                _ => {
                    let victim = step % p;
                    d.set_dead(victim, true);
                    for slot in outstanding.iter_mut() {
                        if *slot == victim {
                            d.note_completion(victim);
                            if let Ok(pl) =
                                d.replace_after_failure(true, ReqKnowledge::exact(0.6, svc), &mut mon)
                            {
                                *slot = pl.node;
                            }
                        }
                    }
                    outstanding.retain(|&n| n != victim);
                    d.set_dead(victim, false);
                }
            }
        }
        for node in outstanding.drain(..) {
            d.note_completion(node);
        }
        for n in 0..p {
            prop_assert_eq!(d.in_flight(n), 0, "node {} count not drained", n);
        }
    }

    /// The O(log p) decision index and the dense RSRC scan pick the same
    /// node for every draw, across random cluster shapes, tick/charge
    /// histories (including off-period ticks), and node deaths. The two
    /// pipelines differ only in the scorer stage, so any divergence is a
    /// bug in the index's bound, tie-break, or staleness tracking.
    #[test]
    fn indexed_argmin_matches_dense_argmin(
        p in 17usize..120,
        m_frac in 0.1f64..0.6,
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..8, any::<u16>()), 40..200),
    ) {
        let m = ((p as f64 * m_frac) as usize).clamp(1, p - 1);
        let registry = SchedulerRegistry::builtin();
        let mk = |scorer: &str| {
            let spec = StageSpec::parse(&format!(
                "rotation-masters/reservation/level-split/{scorer}/split-demand"
            ))
            .unwrap();
            let mut cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave);
            cfg = cfg.with_masters(m);
            cfg = cfg.with_seed(seed);
            registry.compose(&cfg, &spec, 0.3, 0.02).unwrap()
        };
        let mut dense = mk("min-rsrc-reserve");
        let mut indexed = mk("rsrc-indexed-reserve");
        let mut mon_a = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
        let mut mon_b = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);
        let mut now = SimTime::ZERO;
        let svc = SimDuration::from_millis(10);
        let mut dead = vec![false; p];
        for (step, (op, arg)) in ops.into_iter().enumerate() {
            let arg = arg as usize;
            match op {
                // Advance the clock by a non-uniform amount and feed both
                // monitors the same pseudo-random snapshots.
                0 => {
                    now = now
                        .checked_add(SimDuration::from_millis(200 + (arg as u64 % 700)))
                        .unwrap();
                    let snaps: Vec<_> = (0..p)
                        .map(|i| {
                            let h = (i as u64)
                                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                .wrapping_add(step as u64)
                                ^ seed;
                            msweb_ossim::LoadSnapshot {
                                at: now,
                                cpu_busy: SimDuration::from_secs_f64(
                                    now.as_secs_f64() * ((h % 97) as f64 / 100.0),
                                ),
                                disk_busy: SimDuration::from_secs_f64(
                                    now.as_secs_f64() * (((h >> 7) % 97) as f64 / 100.0),
                                ),
                                mem_free_ratio: 1.0,
                                ready_len: 0,
                                disk_queue_len: 0,
                                processes: 0,
                            }
                        })
                        .collect();
                    mon_a.tick(now, &snaps);
                    mon_b.tick(now, &snaps);
                }
                // Toggle a node's liveness, but never kill the last live
                // node of a level.
                1 => {
                    let victim = arg % p;
                    let flip = !dead[victim];
                    let (lo, hi) = if victim < m { (0, m) } else { (m, p) };
                    let live_in_level = (lo..hi).filter(|&i| !dead[i]).count();
                    if !flip || live_in_level > 1 {
                        dead[victim] = flip;
                        dense.set_dead(victim, flip);
                        indexed.set_dead(victim, flip);
                    }
                }
                // Place a request through both pipelines (charging each
                // monitor identically) and compare the chosen node.
                _ => {
                    let dynamic = op % 2 == 0;
                    let w = (arg % 101) as f64 / 100.0;
                    let a = dense.place(dynamic, ReqKnowledge::exact(w, svc), &mut mon_a).unwrap();
                    let b = indexed.place(dynamic, ReqKnowledge::exact(w, svc), &mut mon_b).unwrap();
                    prop_assert_eq!(a.node, b.node, "placement at step {} diverged", step);
                }
            }
        }
    }

    /// Schema-v2 decision records survive the JSONL round trip exactly:
    /// encode → parse is the identity, with no warnings, for arbitrary
    /// field values (including the v2 replay fields and restart flag).
    #[test]
    fn decision_records_round_trip_through_jsonl(
        seq in any::<u64>(),
        req in any::<u64>(),
        entry in 0usize..256,
        chosen in 0usize..256,
        cand in prop::collection::vec((0usize..256, any::<f64>()), 0..9),
        theta_hat in 0.0f64..=1.0,
        theta2_star in 0.0f64..=1.0,
        w in 0.0f64..=1.0,
        latency_us in any::<u64>(),
        at_us in any::<u64>(),
        demand_us in any::<u64>(),
        expected_us in any::<u64>(),
        dynamic in any::<bool>(),
        on_master in any::<bool>(),
        redirected in any::<bool>(),
        masters_ok in any::<bool>(),
        restart in any::<bool>(),
        origin in 0usize..8,
        region in any::<Option<bool>>(),
    ) {
        let record = DecisionRecord {
            seq,
            dynamic,
            entry,
            candidates: cand.iter().map(|&(n, _)| n).collect(),
            scores: cand.iter().map(|&(_, s)| s).collect(),
            theta_hat,
            theta2_star,
            chosen,
            on_master,
            redirected,
            latency_us,
            req,
            at_us,
            demand_us,
            w,
            expected_us,
            masters_ok,
            restart,
            origin: if region.is_some() { origin } else { 0 },
            region: region.map(usize::from),
        };
        let event = TraceEvent::Decision(record);
        let line = encode_event(&event);
        let (parsed, warnings) = parse_line(&line)
            .map_err(|e| format!("round trip failed to parse: {e}\n{line}"))?;
        prop_assert_eq!(parsed, event);
        prop_assert_eq!(warnings, Vec::<String>::new());
    }

    /// The failure/lifecycle events (drop, node-down/up, complete, tick)
    /// round-trip exactly too — these are what make `failure_recovery`
    /// scenarios replayable from logs alone.
    #[test]
    fn lifecycle_events_round_trip_through_jsonl(
        kind in 0u8..5,
        req in any::<u64>(),
        node in 0usize..256,
        at_us in any::<u64>(),
        us in any::<u64>(),
        w in 0.0f64..=1.0,
        rho in 0.0f64..=1.0,
        dynamic in any::<bool>(),
        redrive in any::<bool>(),
        restart in any::<bool>(),
        nodes in prop::collection::vec(
            (any::<u64>(), any::<u64>(), 0.0f64..=1.0, 0usize..4096),
            0..7,
        ),
    ) {
        let event = match kind {
            0 => TraceEvent::Drop(DropRecord {
                req,
                at_us,
                dynamic,
                w,
                expected_us: us,
                redrive,
                restart,
                origin: node % 8,
            }),
            1 => TraceEvent::NodeDown { node },
            2 => TraceEvent::NodeUp { node },
            3 => TraceEvent::Complete {
                req,
                node,
                dynamic,
                response_us: us,
            },
            _ => TraceEvent::Tick {
                at_us,
                rho,
                nodes: nodes
                    .iter()
                    .map(|&(cpu, disk, mem, len)| NodeSample {
                        cpu_busy_us: cpu,
                        disk_busy_us: disk,
                        mem_free_ratio: mem,
                        ready_len: len,
                        disk_queue_len: len / 2,
                        processes: len + 1,
                    })
                    .collect(),
            },
        };
        let line = encode_event(&event);
        let (parsed, warnings) = parse_line(&line)
            .map_err(|e| format!("round trip failed to parse: {e}\n{line}"))?;
        prop_assert_eq!(parsed, event);
        prop_assert_eq!(warnings, Vec::<String>::new());
    }

    /// Meta lines round-trip, including awkward spec strings (quotes,
    /// backslashes, newlines, non-ASCII) and optional per-node speeds.
    #[test]
    fn meta_events_round_trip_through_jsonl(
        which in 0usize..8,
        live in any::<bool>(),
        spec_idx in any::<Option<u8>>(),
        p in 1usize..256,
        m in 0usize..256,
        seed in any::<u64>(),
        a0 in 0.01f64..=10.0,
        r0 in 1e-4f64..=1.0,
        master_reserve in 0.0f64..=1.0,
        dns_skew in 0.0f64..=1.0,
        monitor_period_us in any::<u64>(),
        remote_latency_us in any::<u64>(),
        redirect_rtt_us in any::<u64>(),
        speeds in any::<Option<u8>>(),
        regions in any::<bool>(),
    ) {
        const SPECS: [&str; 4] = [
            "rotation/none/entry-only/rsrc-indexed/split-demand",
            "rotation-masters/reservation/level-split/rsrc-indexed-reserve/split-demand",
            "a \"quoted\" spec with \\ backslash",
            "sp\u{e9}c\nwith control\tchars \u{1f980}",
        ];
        let meta = RunMeta {
            substrate: if live { "live" } else { "sim" }.to_string(),
            p,
            m,
            policy: policies()[which].slug().to_string(),
            spec: spec_idx.map(|i| SPECS[i as usize % SPECS.len()].to_string()),
            seed,
            a0,
            r0,
            master_reserve,
            dns_skew,
            monitor_period_us,
            remote_latency_us,
            redirect_rtt_us,
            speeds: speeds.map(|k| (0..k as usize % 6).map(|i| 0.5 + i as f64).collect()),
            regions: regions.then(|| RegionTopology::even(p.max(2), p.max(2) / 2, 2)),
        };
        let event = TraceEvent::Meta(meta);
        let line = encode_event(&event);
        let (parsed, warnings) = parse_line(&line)
            .map_err(|e| format!("round trip failed to parse: {e}\n{line}"))?;
        prop_assert_eq!(parsed, event);
        prop_assert_eq!(warnings, Vec::<String>::new());
    }

    /// Forward/backward schema tolerance on arbitrary records: unknown
    /// fields, newer versions, and v1 (bare-record) lines all parse with
    /// a warning, never an error, and preserve every field they carry.
    #[test]
    fn schema_drift_warns_but_parses(
        seq in 1u64..1_000_000,
        entry in 0usize..64,
        chosen in 0usize..64,
        theta_hat in 0.0f64..=1.0,
        theta2_star in 0.0f64..=1.0,
        dynamic in any::<bool>(),
        on_master in any::<bool>(),
        latency_us in any::<u64>(),
    ) {
        let record = DecisionRecord {
            seq,
            dynamic,
            entry,
            candidates: vec![entry, chosen],
            scores: vec![1.5, 0.5],
            theta_hat,
            theta2_star,
            chosen,
            on_master,
            redirected: false,
            latency_us,
            req: seq - 1,
            at_us: 7,
            demand_us: 8,
            w: 0.25,
            expected_us: 9,
            masters_ok: true,
            restart: false,
            origin: 0,
            region: None,
        };
        let line = encode_event(&TraceEvent::Decision(record.clone()));

        // Unknown field from some future schema: warn, keep the rest.
        let extended = format!(
            "{},\"zzz_future_field\":[1,2,{{\"k\":true}}]}}",
            &line[..line.len() - 1]
        );
        let (parsed, warnings) = parse_line(&extended)
            .map_err(|e| format!("unknown field became an error: {e}"))?;
        prop_assert_eq!(&parsed, &TraceEvent::Decision(record.clone()));
        prop_assert!(
            warnings.iter().any(|w| w.contains("zzz_future_field")),
            "expected an unknown-field warning, got {warnings:?}"
        );

        // Newer schema version: warn, parse on a best-effort basis.
        let newer = line.replacen("{\"v\":2,", "{\"v\":3,", 1);
        let (parsed, warnings) = parse_line(&newer)
            .map_err(|e| format!("newer version became an error: {e}"))?;
        prop_assert_eq!(&parsed, &TraceEvent::Decision(record.clone()));
        prop_assert!(!warnings.is_empty(), "newer version should warn");

        // A v1 line (bare record, no envelope): parses with defaulted
        // replay fields and a warning.
        let v1 = format!(
            "{{\"seq\":{seq},\"dynamic\":{dynamic},\"entry\":{entry},\
             \"candidates\":[{entry},{chosen}],\"scores\":[1.5,0.5],\
             \"theta_hat\":{theta_hat},\"theta2_star\":{theta2_star},\
             \"chosen\":{chosen},\"on_master\":{on_master},\
             \"redirected\":false,\"latency_us\":{latency_us}}}"
        );
        let (parsed, warnings) =
            parse_line(&v1).map_err(|e| format!("v1 line became an error: {e}"))?;
        let TraceEvent::Decision(old) = parsed else {
            return Err("v1 line did not parse as a decision".to_string());
        };
        prop_assert_eq!(old.seq, seq);
        prop_assert_eq!(old.req, seq, "v1 defaults req to seq");
        prop_assert_eq!(old.chosen, chosen);
        prop_assert!(old.masters_ok, "v1 defaults masters_ok");
        prop_assert!(!old.restart, "v1 defaults restart");
        prop_assert!(!warnings.is_empty(), "v1 line should warn");
    }

    /// The cache never changes completion accounting, only speeds.
    #[test]
    fn cache_preserves_accounting(seed in any::<u64>(), q in 5usize..100) {
        let demand = DemandModel::simulation(40.0).with_query_popularity(q, 1.0);
        let trace = ksu()
            .generate(400, &demand, seed)
            .scaled_to_rate(150.0);
        let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
        cfg = cfg.with_masters(3);
        cfg = cfg.with_cache(msweb_cluster::CacheConfig::default_swala());
        cfg = cfg.with_seed(seed);
        let s = simulate(cfg, &trace, RunOptions::new()).summary;
        prop_assert_eq!(s.completed, 400);
        prop_assert!(s.cache_hits <= s.completed_dynamic);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sharded monitor refresh is bit-identical to the dense scan
    /// for arbitrary snapshot contents, fleet sizes, and worker counts:
    /// each per-node window ratio is a pure function of that node's
    /// previous and current snapshot, and the chunk partition never
    /// depends on the worker count.
    #[test]
    fn sharded_tick_matches_dense_scan(
        p in 1usize..600,
        workers in 0usize..9,
        seed in any::<u64>(),
        ticks in 1usize..4,
    ) {
        use msweb_ossim::LoadSnapshot;
        use msweb_simcore::SimRng;

        let period = SimDuration::from_millis(500);
        let mut dense = LoadMonitor::new(p, period, SimTime::ZERO);
        let mut sharded = LoadMonitor::new(p, period, SimTime::ZERO);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut busy = vec![(0u64, 0u64); p];
        for tick in 1..=ticks {
            let at = SimTime::from_millis(500 * tick as u64);
            let snaps: Vec<LoadSnapshot> = (0..p)
                .map(|i| {
                    // Cumulative busy counters grow by a random amount
                    // per window, like real nodes.
                    busy[i].0 += (rng.next_f64() * 400_000.0) as u64;
                    busy[i].1 += (rng.next_f64() * 200_000.0) as u64;
                    LoadSnapshot {
                        at,
                        cpu_busy: SimDuration::from_micros(busy[i].0),
                        disk_busy: SimDuration::from_micros(busy[i].1),
                        mem_free_ratio: rng.next_f64(),
                        ready_len: (rng.next_f64() * 20.0) as usize,
                        disk_queue_len: (rng.next_f64() * 10.0) as usize,
                        processes: (rng.next_f64() * 30.0) as usize,
                    }
                })
                .collect();
            dense.tick(at, &snaps);
            sharded.tick_with_workers(at, &snaps, workers);
            prop_assert_eq!(dense.all(), sharded.all(), "tick {}", tick);
            prop_assert_eq!(
                dense.mean_utilisation().to_bits(),
                sharded.mean_utilisation().to_bits(),
                "mean utilisation diverged at tick {}", tick
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Attained-service accounting is conserved on the simulation
    /// substrate for every visibility level and attained-service
    /// scorer, with and without a mid-run crash: progress never
    /// overruns the true demand, the books close for every request
    /// (nothing left in flight), exactly the completed requests are
    /// folded into the completion counters, and the completed service
    /// time equals the workload's true demand when everything ran to
    /// completion (and never exceeds it otherwise).
    #[test]
    fn attained_service_is_conserved_in_simulation(
        n in 100usize..300,
        rate in 50.0f64..300.0,
        seed in any::<u64>(),
        vis in 0usize..4,
        which in 0usize..3,
        crash in any::<bool>(),
    ) {
        use msweb_cluster::{ClusterSim, FailurePlan};
        use msweb_workload::DemandVisibility;

        let trace = ucb()
            .generate(n, &DemandModel::simulation(40.0), seed)
            .scaled_to_rate(rate);
        let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave)
            .with_masters(3)
            .with_seed(seed ^ 0x5ca1e);
        let scorer = ["gittins", "serpt", "las"][which];
        let spec = StageSpec::parse(&format!(
            "rotation-masters/attained/level-split/{scorer}/split-demand"
        ))
        .unwrap();
        let registry = SchedulerRegistry::builtin();
        let scheduler = registry.compose(&cfg, &spec, 0.25, 0.025).unwrap();
        let visibility = [
            DemandVisibility::Exact,
            DemandVisibility::Sampled,
            DemandVisibility::Noisy(0.3),
            DemandVisibility::Hidden,
        ][vis];
        let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
            .with_priors(0.25, 0.025)
            .with_visibility(visibility);
        if crash {
            sim = sim.with_failures(FailurePlan::crash(5, SimTime::from_millis(300)));
        }
        let s = sim.run(&trace);
        let att = sim.scheduler().attained();
        prop_assert_eq!(att.in_flight(), 0, "books left open");
        prop_assert_eq!(att.overruns(), 0, "attained exceeded true demand");
        prop_assert_eq!(att.completed(), s.completed as u64);
        let true_total: u64 = trace
            .requests
            .iter()
            .map(|r| r.demand.service.as_micros())
            .sum();
        if s.completed == n as u64 && s.restarted == 0 {
            prop_assert_eq!(att.completed_time().as_micros(), true_total);
        } else {
            prop_assert!(att.completed_time().as_micros() <= true_total);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Region-capacity conservation: driving a region-composed
    /// scheduler directly through an arbitrary interleaving of
    /// placements (with migrating origins), completions, and node
    /// kill/recover toggles, every successful placement lands in a
    /// region that had a live master and spare capacity at decision
    /// time, the placement itself never pushes a region past its
    /// capacity, and `NoLiveNodes` is returned exactly when no region
    /// is eligible. Failures shrink to a minimal op sequence.
    #[test]
    fn region_guard_conserves_capacity_under_outages_and_migrations(
        seed in any::<u64>(),
        k in 2usize..5,
        masters_per in 1usize..3,
        slaves_per in 1usize..4,
        node_capacity in 1u32..4,
        greedy in any::<bool>(),
        ops in prop::collection::vec(
            (0usize..8, 0usize..64, any::<bool>(), 0usize..3),
            1..160,
        ),
    ) {
        let m = k * masters_per;
        let p = m + k * slaves_per;
        let topo = RegionTopology::even(p, m, k).with_node_capacity(node_capacity);
        let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
            .with_masters(m)
            .with_seed(seed)
            .with_regions(topo.clone());
        let policy = if greedy { "region-greedy" } else { "region-nearest" };
        let spec = StageSpec::for_policy(PolicyKind::MasterSlave).with_region(policy);
        let mut sched = SchedulerRegistry::builtin()
            .compose(&cfg, &spec, 0.25, 0.025)
            .expect("region pipeline composes");
        let mut monitor = LoadMonitor::new(p, SimDuration::from_millis(500), SimTime::ZERO);

        let region_load = |sched: &dyn Fn(usize) -> u32, r: usize| {
            let counts: Vec<u32> = (0..p).map(sched).collect();
            topo.region_in_flight(r, &counts)
        };

        let mut outstanding: Vec<usize> = Vec::new();
        let mut req = 0u64;
        let mut t_us = 0u64;
        for (origin, sel, dynamic, action) in ops {
            match action {
                // An outage (or recovery) of one node; whole-region
                // outages arise from repeated toggles.
                0 => {
                    let node = sel % p;
                    let dead = sched.is_dead(node);
                    sched.set_dead(node, !dead);
                }
                // A completion frees capacity in the serving region.
                1 => {
                    if !outstanding.is_empty() {
                        let node = outstanding.swap_remove(sel % outstanding.len());
                        sched.note_completion(node);
                    }
                }
                // A placement from a (possibly migrated) origin.
                _ => {
                    req += 1;
                    t_us += 1_000;
                    let demand = SimDuration::from_micros(8_000);
                    sched.note_request(req, SimTime(t_us), demand);
                    sched.note_origin(origin);
                    let dead: Vec<bool> = (0..p).map(|n| sched.is_dead(n)).collect();
                    let before: Vec<u64> = (0..k)
                        .map(|r| region_load(&|n| sched.in_flight(n), r))
                        .collect();
                    match sched.place(dynamic, ReqKnowledge::exact(0.4, demand), &mut monitor) {
                        Ok(placement) => {
                            let r = topo.region_of(placement.node);
                            prop_assert!(
                                topo.has_live_master(r, &dead, m),
                                "req {} placed into region {} with no live master",
                                req, r
                            );
                            prop_assert!(
                                before[r] < topo.capacity(r),
                                "req {} entered region {} already at capacity {}",
                                req, r, topo.capacity(r)
                            );
                            let after = region_load(&|n| sched.in_flight(n), r);
                            prop_assert!(
                                after <= topo.capacity(r),
                                "region {} exceeded capacity: {} > {}",
                                r, after, topo.capacity(r)
                            );
                            outstanding.push(placement.node);
                        }
                        Err(_) => {
                            for (r, &load) in before.iter().enumerate() {
                                prop_assert!(
                                    !topo.has_live_master(r, &dead, m)
                                        || load >= topo.capacity(r),
                                    "NoLiveNodes returned while region {} was eligible \
                                     (live master, load {}/{})",
                                    r, load, topo.capacity(r)
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
