//! Differential tests for the counterfactual decision-log replay
//! analyzer (`cluster::sched::replay`, surfaced as `msweb analyze`).
//!
//! The core contract: a decision log replayed under its own recorded
//! composition is a *fixed point* — zero divergent placements, no stage
//! disagreement, identical model stretch and balance — for every
//! built-in policy, at p = 32 and p = 128, on logs produced by the real
//! simulator driver. And the analysis itself is deterministic: the same
//! log analyzed twice renders byte-identical JSON.
//!
//! Golden `AnalysisReport` fixtures live in `tests/fixtures/golden/`;
//! regenerate (only when a behaviour change is intended and reviewed)
//! with:
//!
//! ```sh
//! MSWEB_BLESS=1 cargo test --test decision_replay
//! ```

use std::path::PathBuf;
use std::process::Command;

use msweb::prelude::*;

const ALL_POLICIES: [PolicyKind; 8] = [
    PolicyKind::Flat,
    PolicyKind::MasterSlave,
    PolicyKind::MsNoSampling,
    PolicyKind::MsNoReservation,
    PolicyKind::MsAllMasters,
    PolicyKind::MsPrime,
    PolicyKind::Redirect,
    PolicyKind::Switch,
];

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("msweb-replay-{}-{name}", std::process::id()));
    p
}

/// Record a traced simulator run and parse the log back.
fn record(policy: PolicyKind, p: usize, m: usize, n: usize, lambda: f64) -> (TraceLog, RunSummary) {
    let trace = ucb()
        .generate(n, &DemandModel::simulation(40.0), 7)
        .scaled_to_rate(lambda);
    let cfg = ClusterConfig::simulation(p, policy)
        .with_masters(m)
        .with_seed(11);
    let path = tmp(&format!("{}-p{p}.jsonl", policy.slug()));
    let sink = JsonlSink::create(&path).expect("create log");
    let summary = simulate(cfg, &trace, RunOptions::new().observer(Box::new(sink))).summary;
    let log = TraceLog::read(&path).expect("parse log");
    let _ = std::fs::remove_file(&path);
    (log, summary)
}

/// Self-replay must reconstruct the recorded run exactly.
fn assert_fixed_point(policy: PolicyKind, p: usize, m: usize, n: usize, lambda: f64) {
    let (log, summary) = record(policy, p, m, n, lambda);
    let report = analyze(&log, &ReplayOptions::default()).expect("analyze");
    assert_eq!(report.p, p);
    assert_eq!(
        report.decisions, summary.completed,
        "every completion was placed"
    );
    assert_eq!(
        report.divergent,
        0,
        "{} p={p}: self-replay placed {} of {} requests differently",
        policy.slug(),
        report.divergent,
        report.decisions
    );
    assert_eq!(
        report.first_disagreement,
        None,
        "{} p={p}: self-replay disagreed at some stage",
        policy.slug()
    );
    assert_eq!(report.counterfactual_dropped, 0);
    assert_eq!(report.model_stretch_delta, 0.0);
    assert_eq!(report.node_busy_cv_delta, 0.0);
    assert_eq!(report.baseline_spec, report.replay_spec);
}

#[test]
fn self_replay_is_a_fixed_point_for_every_policy_at_p32() {
    for policy in ALL_POLICIES {
        assert_fixed_point(policy, 32, 8, 800, 600.0);
    }
}

#[test]
fn self_replay_is_a_fixed_point_for_every_policy_at_p128() {
    for policy in ALL_POLICIES {
        assert_fixed_point(policy, 128, 16, 600, 1200.0);
    }
}

#[test]
fn analysis_is_deterministic_byte_for_byte() {
    let (log, _) = record(PolicyKind::MasterSlave, 32, 8, 800, 600.0);
    let a = analyze(&log, &ReplayOptions::default()).expect("first analysis");
    let b = analyze(&log, &ReplayOptions::default()).expect("second analysis");
    assert_eq!(a.to_json(), b.to_json(), "analysis is not deterministic");
}

/// The acceptance counterfactual: an M/S-with-reservation log replayed
/// under a no-reservation admission must diverge, and the *first*
/// disagreement must be attributed to the admission stage (the swapped
/// stage), not downstream ones.
#[test]
fn no_reservation_counterfactual_diverges_at_admission() {
    // A smaller, hotter cluster so the reservation actually gates
    // placements during the run.
    let (log, _) = record(PolicyKind::MasterSlave, 8, 4, 800, 400.0);
    let spec =
        StageSpec::parse("rotation-masters/none/level-split/rsrc-indexed-reserve/split-demand")
            .expect("spec parses");
    let opts = ReplayOptions {
        spec: Some(spec),
        run: 0,
    };
    let report = analyze(&log, &opts).expect("analyze");
    assert!(
        report.divergent > 0,
        "removing the reservation should change placements"
    );
    let first = report
        .first_disagreement
        .as_ref()
        .expect("divergent replay records its first disagreement");
    assert_eq!(
        first.stage,
        StageKind::Admission,
        "the swapped admission stage should disagree first, got {:?}",
        first.stage
    );
    // The divergence shows up in the aggregate deltas too: placements
    // moved, so per-node load assignment changed.
    assert!(report.stage_attribution.values().sum::<u64>() == report.divergent);
}

/// Golden `AnalysisReport` fixtures: a self-replay and the
/// no-reservation counterfactual of the same M/S log. Catches both
/// analyzer drift and encoder drift.
#[test]
fn analysis_reports_match_golden_fixtures() {
    let bless = std::env::var_os("MSWEB_BLESS").is_some();
    let (log, _) = record(PolicyKind::MasterSlave, 32, 8, 800, 600.0);

    let self_report = analyze(&log, &ReplayOptions::default()).expect("self analysis");
    let cf_spec =
        StageSpec::parse("rotation-masters/none/level-split/rsrc-indexed-reserve/split-demand")
            .expect("spec parses");
    let cf_report = analyze(
        &log,
        &ReplayOptions {
            spec: Some(cf_spec),
            run: 0,
        },
    )
    .expect("counterfactual analysis");

    let mut mismatches = Vec::new();
    for (name, report) in [
        ("analyze-ms-p32-self", &self_report),
        ("analyze-ms-p32-vs-none", &cf_report),
    ] {
        let got = report.to_json();
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures/golden")
            .join(format!("{name}.json"));
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"));
        if got != want {
            mismatches.push(format!(
                "{name}: report drifted from fixture {path:?}\n--- fixture\n{want}\n--- got\n{got}"
            ));
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n\n"));
}

/// Record a region-composed run — three-region ring, region-0 outage
/// mid-run with recovery, a cost series that makes the cost-aware
/// greedy selector leave the expensive home region — and parse the log
/// back.
fn record_region_outage(region_policy: &str) -> TraceLog {
    let p = 12;
    let m = 3;
    let regions = 3;
    let n = 600;
    let lambda = 400.0;
    // Region 0 is 15x as expensive as its neighbours: `region-greedy`
    // sends origin-0 traffic abroad from the first request, while
    // `region-nearest` (latency argmin) keeps it home — a divergence
    // rooted in the region stage itself, with every downstream stage
    // identical.
    let topo = RegionTopology::even(p, m, regions)
        .with_cost(vec![vec![15.0], vec![1.0], vec![1.0]], 1_000_000);
    let (ms, me) = topo.master_range(0);
    let (ss, se) = topo.slave_range(0);
    let replay_us = (n as f64 / lambda * 1e6) as u64;
    let failures = FailurePlan::new(
        (ms..me)
            .chain(ss..se)
            .map(|node| FailureEvent {
                at: SimTime(replay_us / 4),
                node,
                restart_dynamic: true,
                recover_at: Some(SimTime(replay_us * 6 / 10)),
            })
            .collect(),
    );
    let mix = RegionMix::uniform(regions);
    let trace = ucb()
        .generate(n, &DemandModel::simulation(40.0).with_region_mix(mix), 7)
        .scaled_to_rate(lambda);
    let a0 = ucb().arrival_ratio_a();
    let r0 = 1.0 / 40.0;
    let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(m)
        .with_seed(11)
        .with_regions(topo);
    let spec = StageSpec::for_policy(PolicyKind::MasterSlave).with_region(region_policy);
    let mut scheduler = SchedulerRegistry::builtin()
        .compose(&cfg, &spec, a0, r0)
        .expect("region pipeline composes");
    let path = tmp(&format!("region-outage-{region_policy}.jsonl"));
    let sink = JsonlSink::create(&path).expect("create log");
    scheduler.set_observer(Some(Box::new(sink)));
    let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
        .with_priors(a0, r0)
        .with_spec_label(spec.render())
        .with_failures(failures);
    sim.run(&trace);
    drop(sim);
    let log = TraceLog::read(&path).expect("parse log");
    let _ = std::fs::remove_file(&path);
    log
}

/// A region-outage log is a self-replay fixed point, and re-driving it
/// with the region stage swapped out diverges *at the region stage* —
/// the first disagreement is attributed to `region`, not `entry` or
/// anything downstream.
#[test]
fn region_outage_counterfactual_diverges_at_region_stage() {
    let log = record_region_outage("region-nearest");

    let self_report = analyze(&log, &ReplayOptions::default()).expect("self analysis");
    assert_eq!(
        self_report.divergent, 0,
        "region-outage self-replay must be a fixed point"
    );
    assert_eq!(self_report.first_disagreement, None);

    let swapped = StageSpec::parse(
        "region-greedy/rotation-masters/reservation/level-split/\
         rsrc-indexed-reserve/split-demand",
    )
    .expect("spec parses");
    let report = analyze(
        &log,
        &ReplayOptions {
            spec: Some(swapped),
            run: 0,
        },
    )
    .expect("counterfactual analysis");
    assert!(
        report.divergent > 0,
        "swapping the region selector should change placements"
    );
    let first = report
        .first_disagreement
        .as_ref()
        .expect("divergent replay records its first disagreement");
    assert_eq!(
        first.stage,
        StageKind::Region,
        "the swapped region stage should disagree first, got {:?}",
        first.stage
    );
    assert!(
        report.stage_attribution.get("region").copied().unwrap_or(0) > 0,
        "region divergence should appear in the stage attribution: {:?}",
        report.stage_attribution
    );
}

/// End-to-end through the binary: record with `msweb replay`, analyze
/// with `msweb analyze` — zero self-divergence (exit 0 under
/// `--fail-on-divergence`), byte-identical JSON across two invocations,
/// nonzero exit when the counterfactual spec diverges.
#[test]
fn analyze_cli_self_replay_reports_zero_divergence() {
    let path = tmp("cli-analyze.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_msweb"))
        .args([
            "replay",
            "--trace",
            "ucb",
            "--lambda",
            "200",
            "--p",
            "32",
            "--requests",
            "500",
            "--policy",
            "M/S",
            "--trace-decisions",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn msweb replay");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let analyze_json = || {
        Command::new(env!("CARGO_BIN_EXE_msweb"))
            .args([
                "analyze",
                "--log",
                path.to_str().unwrap(),
                "--json",
                "--fail-on-divergence",
            ])
            .output()
            .expect("spawn msweb analyze")
    };
    let first = analyze_json();
    assert!(
        first.status.success(),
        "self-replay diverged:\n{}{}",
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&first.stderr)
    );
    let second = analyze_json();
    assert_eq!(
        first.stdout, second.stdout,
        "analyze JSON is not byte-stable across runs"
    );
    let body = String::from_utf8_lossy(&first.stdout);
    assert!(
        body.contains("\"divergent\": 0"),
        "unexpected report: {body}"
    );

    // The counterfactual spec must make --fail-on-divergence bite.
    let cf = Command::new(env!("CARGO_BIN_EXE_msweb"))
        .args([
            "analyze",
            "--log",
            path.to_str().unwrap(),
            "--spec",
            "rotation-masters/none/level-split/rsrc-indexed-reserve/split-demand",
            "--fail-on-divergence",
        ])
        .output()
        .expect("spawn msweb analyze (counterfactual)");
    assert!(
        !cf.status.success(),
        "counterfactual replay unexpectedly matched the log:\n{}",
        String::from_utf8_lossy(&cf.stdout)
    );

    let _ = std::fs::remove_file(&path);
}
