//! End-to-end integration tests of the paper's headline orderings: the
//! fully optimised M/S policy should not lose to its own ablations or to
//! the baselines across traces and seeds.

use msweb::prelude::*;

/// Replay one configuration and return the stretch.
#[allow(clippy::too_many_arguments)]
fn stretch(
    spec: &TraceSpec,
    n: usize,
    lambda: f64,
    inv_r: f64,
    p: usize,
    m: usize,
    policy: PolicyKind,
    seed: u64,
) -> f64 {
    let trace = spec
        .generate(n, &DemandModel::simulation(inv_r), seed)
        .scaled_to_rate(lambda);
    let mut cfg = ClusterConfig::simulation(p, policy);
    cfg = cfg.with_masters(m);
    cfg = cfg.with_seed(seed ^ 0xABCD);
    simulate(cfg, &trace, RunOptions::new()).summary.stretch
}

fn planned_m(spec: &TraceSpec, lambda: f64, inv_r: f64, p: usize) -> usize {
    plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / inv_r, 1200.0)
}

#[test]
fn ms_beats_flat_on_cgi_heavy_workloads() {
    for (spec, lambda, inv_r) in [(ucb(), 1000.0, 40.0), (ksu(), 500.0, 80.0)] {
        let m = planned_m(&spec, lambda, inv_r, 32);
        let ms = stretch(
            &spec,
            8_000,
            lambda,
            inv_r,
            32,
            m,
            PolicyKind::MasterSlave,
            1,
        );
        let flat = stretch(&spec, 8_000, lambda, inv_r, 32, m, PolicyKind::Flat, 1);
        assert!(ms < flat, "{}: M/S {ms} should beat flat {flat}", spec.name);
    }
}

#[test]
fn ms_beats_no_reservation_across_seeds() {
    let spec = ksu();
    let (lambda, inv_r, p) = (1000.0, 80.0, 32);
    let m = planned_m(&spec, lambda, inv_r, p);
    let mut wins = 0;
    for seed in 1..=3 {
        let ms = stretch(
            &spec,
            8_000,
            lambda,
            inv_r,
            p,
            m,
            PolicyKind::MasterSlave,
            seed,
        );
        let nr = stretch(
            &spec,
            8_000,
            lambda,
            inv_r,
            p,
            m,
            PolicyKind::MsNoReservation,
            seed,
        );
        if ms < nr {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "M/S should beat M/S-nr in most seeds, won {wins}/3"
    );
}

#[test]
fn ms_beats_all_masters_on_cpu_heavy_cgi() {
    // Separation matters most when CGI burns CPU next to tiny statics.
    let spec = ucb();
    let (lambda, inv_r, p) = (2000.0, 80.0, 32);
    let m = planned_m(&spec, lambda, inv_r, p);
    let ms = stretch(
        &spec,
        10_000,
        lambda,
        inv_r,
        p,
        m,
        PolicyKind::MasterSlave,
        2,
    );
    let m1 = stretch(
        &spec,
        10_000,
        lambda,
        inv_r,
        p,
        m,
        PolicyKind::MsAllMasters,
        2,
    );
    assert!(ms < m1, "M/S {ms} should beat M/S-1 {m1}");
}

#[test]
fn remote_execution_beats_http_redirection() {
    // The paper's §1 argument for remote CGI execution over redirection.
    let spec = adl();
    let (lambda, inv_r, p) = (1000.0, 40.0, 32);
    let m = planned_m(&spec, lambda, inv_r, p);
    let ms = stretch(
        &spec,
        8_000,
        lambda,
        inv_r,
        p,
        m,
        PolicyKind::MasterSlave,
        3,
    );
    let redir = stretch(&spec, 8_000, lambda, inv_r, p, m, PolicyKind::Redirect, 3);
    assert!(
        ms <= redir,
        "remote execution {ms} should not lose to redirection {redir}"
    );
}

#[test]
fn msprime_static_spreading_hurts_under_cpu_cgi() {
    // M/S' lets statics share nodes with pinned dynamics; with CPU-bound
    // CGI that mixing costs static requests dearly.
    let spec = ucb();
    let (lambda, inv_r, p) = (1000.0, 80.0, 32);
    let m = planned_m(&spec, lambda, inv_r, p);
    let ms = stretch(
        &spec,
        8_000,
        lambda,
        inv_r,
        p,
        m,
        PolicyKind::MasterSlave,
        4,
    );
    let msp = stretch(&spec, 8_000, lambda, inv_r, p, m, PolicyKind::MsPrime, 4);
    assert!(ms < msp, "M/S {ms} should beat M/S' {msp}");
}

/// Replay one configuration and return the full summary.
#[allow(clippy::too_many_arguments)]
fn summary(
    spec: &TraceSpec,
    n: usize,
    lambda: f64,
    inv_r: f64,
    p: usize,
    m: usize,
    policy: PolicyKind,
    seed: u64,
) -> RunSummary {
    let trace = spec
        .generate(n, &DemandModel::simulation(inv_r), seed)
        .scaled_to_rate(lambda);
    let mut cfg = ClusterConfig::simulation(p, policy);
    cfg = cfg.with_masters(m);
    cfg = cfg.with_seed(seed ^ 0xABCD);
    simulate(cfg, &trace, RunOptions::new()).summary
}

#[test]
fn switch_beats_stale_dns_rotation() {
    // The L4-switch baseline sees exact connection counts instead of the
    // stale skewed-rotation view DNS gives Flat, so it should win across
    // traces and seeds.
    for (spec, lambda, inv_r) in [(ucb(), 1000.0, 40.0), (ksu(), 1000.0, 80.0)] {
        let m = planned_m(&spec, lambda, inv_r, 32);
        for seed in 1..=3 {
            let sw = stretch(&spec, 8_000, lambda, inv_r, 32, m, PolicyKind::Switch, seed);
            let flat = stretch(&spec, 8_000, lambda, inv_r, 32, m, PolicyKind::Flat, seed);
            assert!(
                sw < flat,
                "{} seed {seed}: Switch {sw} should beat Flat {flat}",
                spec.name
            );
        }
    }
}

#[test]
fn switch_balances_nodes_tighter_than_flat() {
    // Live connection counts keep per-node busy time much more even than
    // the skewed DNS rotation.
    let spec = ksu();
    let m = planned_m(&spec, 1000.0, 80.0, 32);
    for seed in 1..=3 {
        let sw = summary(&spec, 8_000, 1000.0, 80.0, 32, m, PolicyKind::Switch, seed);
        let flat = summary(&spec, 8_000, 1000.0, 80.0, 32, m, PolicyKind::Flat, seed);
        assert!(
            sw.node_busy_cv < flat.node_busy_cv,
            "seed {seed}: Switch CV {} should be tighter than Flat CV {}",
            sw.node_busy_cv,
            flat.node_busy_cv
        );
    }
}

#[test]
fn redirect_lands_between_ms_and_flat() {
    // HTTP redirection still separates classes (so it beats Flat) but
    // pays a client round trip per moved request (so it loses to remote
    // execution) — the paper's §1 ordering.
    let spec = ksu();
    let m = planned_m(&spec, 1000.0, 80.0, 32);
    for seed in 1..=3 {
        let ms = stretch(
            &spec,
            8_000,
            1000.0,
            80.0,
            32,
            m,
            PolicyKind::MasterSlave,
            seed,
        );
        let redir = stretch(
            &spec,
            8_000,
            1000.0,
            80.0,
            32,
            m,
            PolicyKind::Redirect,
            seed,
        );
        let flat = stretch(&spec, 8_000, 1000.0, 80.0, 32, m, PolicyKind::Flat, seed);
        assert!(
            ms <= redir && redir < flat,
            "seed {seed}: expected M/S {ms} <= Redirect {redir} < Flat {flat}"
        );
    }
}

#[test]
fn improvements_grow_with_cgi_cost() {
    // The Figure 4 trend: the M/S advantage over the flat-like M/S-1
    // grows as CGI becomes more expensive relative to statics.
    let spec = ucb();
    let p = 32;
    let mut last = f64::NEG_INFINITY;
    let mut grew = 0;
    for inv_r in [20.0, 40.0, 80.0] {
        let m = planned_m(&spec, 1000.0, inv_r, p);
        let ms = stretch(
            &spec,
            8_000,
            1000.0,
            inv_r,
            p,
            m,
            PolicyKind::MasterSlave,
            5,
        );
        let m1 = stretch(
            &spec,
            8_000,
            1000.0,
            inv_r,
            p,
            m,
            PolicyKind::MsAllMasters,
            5,
        );
        let imp = (m1 / ms - 1.0) * 100.0;
        if imp >= last {
            grew += 1;
        }
        last = imp;
    }
    assert!(grew >= 2, "improvement trend should be mostly increasing");
}
