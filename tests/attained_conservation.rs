//! Attained-service conservation on the *live* substrate: an auditing
//! `Schedule` wrapper checks, call by call, that the emulation feeds the
//! scheduler an account of received service that is monotone, capped at
//! the request's true (scaled) demand, and closed exactly once per
//! completion — the same invariants `crates/cluster/tests/proptests.rs`
//! checks for the simulator, here checked against real wall-clock
//! execution.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use msweb::prelude::*;
use proptest::prelude::*;

/// What the auditor observed for one in-flight request.
#[derive(Debug, Clone, Copy)]
struct Flight {
    node: usize,
    attained_us: u64,
}

#[derive(Debug, Default)]
struct Audit {
    /// True scaled demand per request, learned from `note_request` —
    /// the one channel the substrate legitimately leaks truth through.
    truth_us: HashMap<u64, u64>,
    tracked: HashMap<u64, Flight>,
    ended: u64,
    violations: Vec<String>,
}

/// Forwards every `Schedule` call to the wrapped scheduler, mirroring
/// the attained-service feed into its own books so the invariants can
/// be checked from outside the scheduler under test.
struct Auditor<S> {
    inner: S,
    audit: Rc<RefCell<Audit>>,
}

impl<S: Schedule> Schedule for Auditor<S> {
    fn place(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError> {
        self.inner.place(dynamic, know, monitor)
    }

    fn replace_after_failure(
        &mut self,
        dynamic: bool,
        know: ReqKnowledge,
        monitor: &mut LoadMonitor,
    ) -> Result<Placement, PlacementError> {
        self.inner.replace_after_failure(dynamic, know, monitor)
    }

    fn masters(&self) -> usize {
        self.inner.masters()
    }

    fn set_dead(&mut self, node: usize, dead: bool) {
        self.inner.set_dead(node, dead);
    }

    fn is_dead(&self, node: usize) -> bool {
        self.inner.is_dead(node)
    }

    fn note_completion(&mut self, node: usize) {
        self.inner.note_completion(node);
    }

    fn in_flight(&self, node: usize) -> u32 {
        self.inner.in_flight(node)
    }

    fn reservation(&self) -> &ReservationController {
        self.inner.reservation()
    }

    fn reservation_mut(&mut self) -> &mut ReservationController {
        self.inner.reservation_mut()
    }

    fn set_observer(&mut self, observer: Option<Box<dyn DecisionObserver>>) {
        self.inner.set_observer(observer);
    }

    fn tracing(&self) -> bool {
        self.inner.tracing()
    }

    fn emit(&mut self, event: &TraceEvent) {
        self.inner.emit(event);
    }

    fn note_request(&mut self, req: u64, at: SimTime, demand: SimDuration) {
        self.audit
            .borrow_mut()
            .truth_us
            .insert(req, demand.as_micros());
        self.inner.note_request(req, at, demand);
    }

    fn set_telemetry_enabled(&mut self, on: bool) {
        self.inner.set_telemetry_enabled(on);
    }

    fn telemetry(&self) -> Option<&SchedTelemetry> {
        self.inner.telemetry()
    }

    fn scorer_path_counts(&self) -> Option<ScorerPaths> {
        self.inner.scorer_path_counts()
    }

    fn note_service_start(&mut self, node: usize, tag: u64) {
        self.audit.borrow_mut().tracked.insert(
            tag,
            Flight {
                node,
                attained_us: 0,
            },
        );
        self.inner.note_service_start(node, tag);
    }

    fn note_service_progress(&mut self, node: usize, tag: u64, attained: SimDuration) {
        {
            let mut audit = self.audit.borrow_mut();
            let truth = audit.truth_us.get(&tag).copied();
            let mut faults = Vec::new();
            if let Some(fl) = audit.tracked.get_mut(&tag) {
                let new = attained.as_micros();
                if node != fl.node {
                    faults.push(format!(
                        "req {tag}: progress on node {node} != {0}",
                        fl.node
                    ));
                } else {
                    if new < fl.attained_us {
                        faults.push(format!(
                            "req {tag}: attained regressed {} -> {new}",
                            fl.attained_us
                        ));
                    }
                    fl.attained_us = fl.attained_us.max(new);
                    match truth {
                        Some(t) if new <= t => {}
                        Some(t) => {
                            faults.push(format!("req {tag}: attained {new} > true demand {t}"))
                        }
                        None => faults.push(format!("req {tag}: progress before note_request")),
                    }
                }
            }
            audit.violations.extend(faults);
        }
        self.inner.note_service_progress(node, tag, attained);
    }

    fn note_service_end(&mut self, node: usize, tag: u64, total: SimDuration) {
        {
            let mut audit = self.audit.borrow_mut();
            match audit.tracked.remove(&tag) {
                Some(fl) => {
                    if fl.attained_us > total.as_micros() {
                        audit.violations.push(format!(
                            "req {tag}: attained {} overran completed total {}",
                            fl.attained_us,
                            total.as_micros()
                        ));
                    }
                    if fl.node != node {
                        audit
                            .violations
                            .push(format!("req {tag}: ended on node {node} != {0}", fl.node));
                    }
                }
                None => audit
                    .violations
                    .push(format!("req {tag}: completion without service start")),
            }
            match audit.truth_us.get(&tag) {
                Some(&t) if t == total.as_micros() => {}
                Some(&t) => audit.violations.push(format!(
                    "req {tag}: completed total {} != declared truth {t}",
                    total.as_micros()
                )),
                None => {}
            }
            audit.ended += 1;
        }
        self.inner.note_service_end(node, tag, total);
    }

    fn note_service_lost(&mut self, node: usize, tag: u64) {
        self.audit.borrow_mut().tracked.remove(&tag);
        self.inner.note_service_lost(node, tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Few cases — each replays a (scaled) trace in real time.
    #[test]
    fn attained_service_is_conserved_on_the_live_substrate(
        n in 20usize..40,
        seed in 0u64..1_000,
        m in 1usize..4,
    ) {
        let trace = ucb()
            .generate(n, &DemandModel::sun_cluster(40.0), seed)
            .scaled_to_rate(40.0);
        let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, m);
        cfg.time_scale = 0.05;
        cfg.monitor_period = Duration::from_millis(25);
        let audit = Rc::new(RefCell::new(Audit::default()));
        let scheduler = Auditor {
            inner: live_scheduler(&cfg, &trace),
            audit: Rc::clone(&audit),
        };
        let s = emulate_with(&cfg, &trace, scheduler, LiveRunOptions::new()).summary;
        let audit = audit.borrow();
        prop_assert!(audit.violations.is_empty(), "{}", audit.violations.join("\n"));
        prop_assert_eq!(audit.ended, s.completed as u64);
        prop_assert!(
            audit.tracked.is_empty(),
            "{} flights never closed",
            audit.tracked.len()
        );
    }
}
