//! Behaviour-preservation golden tests: under a fixed root seed, every
//! `PolicyKind` must produce a `RunSummary` byte-identical to the
//! fixtures recorded from the pre-pipeline-refactor implementation.
//!
//! Regenerate the fixtures (only when a behaviour change is intended and
//! reviewed) with:
//!
//! ```sh
//! MSWEB_BLESS=1 cargo test --test golden_summaries
//! ```

use msweb::prelude::*;

/// Filename-safe slug for each policy.
fn slug(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::Flat => "flat",
        PolicyKind::MasterSlave => "ms",
        PolicyKind::MsNoSampling => "ms-ns",
        PolicyKind::MsNoReservation => "ms-nr",
        PolicyKind::MsAllMasters => "ms-1",
        PolicyKind::MsPrime => "ms-prime",
        PolicyKind::Redirect => "redirect",
        PolicyKind::Switch => "switch",
    }
}

const ALL_POLICIES: [PolicyKind; 8] = [
    PolicyKind::Flat,
    PolicyKind::MasterSlave,
    PolicyKind::MsNoSampling,
    PolicyKind::MsNoReservation,
    PolicyKind::MsAllMasters,
    PolicyKind::MsPrime,
    PolicyKind::Redirect,
    PolicyKind::Switch,
];

/// The fixed seed-state run every fixture captures.
fn golden_run(policy: PolicyKind) -> RunSummary {
    let trace = ucb()
        .generate(1_500, &DemandModel::simulation(40.0), 7)
        .scaled_to_rate(300.0);
    let cfg = ClusterConfig::simulation(8, policy)
        .with_masters(3)
        .with_seed(11);
    simulate(cfg, &trace, RunOptions::new()).summary
}

fn fixture_path(policy: PolicyKind) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(format!("{}.json", slug(policy)))
}

#[test]
fn run_summaries_match_pre_refactor_fixtures() {
    let bless = std::env::var_os("MSWEB_BLESS").is_some();
    let mut mismatches = Vec::new();
    for policy in ALL_POLICIES {
        let got = serde::to_json_string_pretty(&golden_run(policy));
        let path = fixture_path(policy);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"));
        if got != want {
            mismatches.push(format!(
                "{}: summary drifted from fixture {path:?}\n--- fixture\n{want}\n--- got\n{got}",
                slug(policy)
            ));
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n\n"));
}
