//! Golden fixtures for the region front tier: under a fixed root seed,
//! a region-composed pipeline must produce a `RunSummary` *and* a
//! decision log byte-identical to the recorded fixtures, for both
//! built-in region selectors at p ∈ {32, 128}. The live emulation
//! drives the identical scheduler value, so its decision records must
//! carry the identical (extended) schema — live timings are wall-clock,
//! so the live side is checked structurally, not byte-for-byte.
//!
//! A third test pins the conditional-serialisation contract that keeps
//! every pre-existing golden fixture untouched: a regionless run must
//! not emit `origin`/`region` keys at all.
//!
//! Regenerate the fixtures (only when a behaviour change is intended
//! and reviewed) with:
//!
//! ```sh
//! MSWEB_BLESS=1 cargo test --test golden_regions
//! ```

use std::time::Duration;

use msweb::emu::live_priors;
use msweb::prelude::*;

const POLICIES: [&str; 2] = ["region-nearest", "region-greedy"];
const SIZES: [usize; 2] = [32, 128];
const REGIONS: usize = 4;
const N: usize = 100;

fn slug(policy: &str) -> &str {
    policy.strip_prefix("region-").unwrap_or(policy)
}

/// Region-tagged workload: the origin mix rotates around the ring so
/// every region is the hot one at some point of the run.
fn region_trace(n: usize, rate: f64) -> Trace {
    let mix = RegionMix::rotating(REGIONS, 4.0, 4.0);
    ucb()
        .generate(n, &DemandModel::simulation(40.0).with_region_mix(mix), 7)
        .scaled_to_rate(rate)
}

/// The fixed seed-state run every fixture captures: a region-composed
/// M/S pipeline on an even ring of `REGIONS` regions.
fn golden_run(policy: &str, p: usize) -> (RunSummary, String) {
    let a0 = ucb().arrival_ratio_a();
    let r0 = 1.0 / 40.0;
    // Load scales with the cluster so both sizes run at the same
    // per-node utilisation.
    let trace = region_trace(N, 150.0 * (p as f64 / 8.0));
    let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(p / 4)
        .with_seed(11)
        .with_regions(RegionTopology::even(p, p / 4, REGIONS));
    let spec = StageSpec::for_policy(PolicyKind::MasterSlave).with_region(policy);
    let mut scheduler = SchedulerRegistry::builtin()
        .compose(&cfg, &spec, a0, r0)
        .expect("region pipeline composes");

    let log_path = std::env::temp_dir().join(format!(
        "msweb-golden-regions-{}-{}-p{p}.jsonl",
        std::process::id(),
        slug(policy)
    ));
    let sink = JsonlSink::create(&log_path).expect("create decision log");
    scheduler.set_observer(Some(Box::new(sink)));
    let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
        .with_priors(a0, r0)
        .with_spec_label(spec.render());
    let summary = sim.run(&trace);
    drop(sim); // flush the sink
    let log = std::fs::read_to_string(&log_path).expect("read decision log");
    let _ = std::fs::remove_file(&log_path);
    (summary, log)
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(name)
}

#[test]
fn region_summaries_and_decision_logs_match_fixtures() {
    let bless = std::env::var_os("MSWEB_BLESS").is_some();
    let mut mismatches = Vec::new();
    for policy in POLICIES {
        for p in SIZES {
            let (summary, log) = golden_run(policy, p);
            let artifacts = [
                (
                    format!("regions-{}-p{p}.json", slug(policy)),
                    serde::to_json_string_pretty(&summary),
                ),
                (format!("regions-{}-p{p}.jsonl", slug(policy)), log),
            ];
            for (name, got) in artifacts {
                let path = fixture_path(&name);
                if bless {
                    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                    std::fs::write(&path, &got).unwrap();
                    continue;
                }
                let want = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"));
                if got != want {
                    mismatches.push(format!("{name}: drifted from fixture {path:?}"));
                }
            }
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
}

/// The ordered key sequence of one JSONL line (extracted lexically:
/// every `"key":` at object level; no field nests another object).
fn key_sequence(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        let key = &tail[..end];
        let after = &tail[end + 1..];
        if after.trim_start().starts_with(':') {
            keys.push(key.to_string());
        }
        rest = after;
    }
    keys
}

fn decision_lines(log: &str) -> Vec<&str> {
    log.lines()
        .filter(|l| l.starts_with("{\"v\":2,\"ev\":\"decision\""))
        .collect()
}

/// Both substrates drive the same scheduler value, so a live region
/// run's decision records must carry exactly the simulator's extended
/// schema (the base v2 keys plus `origin` and `region`), its meta line
/// must embed the topology, and every request must still complete.
#[test]
fn live_region_log_matches_the_sim_schema() {
    let n = 40;
    let (sim_summary, sim_log) = golden_run("region-nearest", 32);
    assert!(sim_summary.completed > 0);

    let mix = RegionMix::rotating(2, 4.0, 2.0);
    let trace = ucb()
        .generate(n, &DemandModel::sun_cluster(40.0).with_region_mix(mix), 9)
        .scaled_to_rate(40.0);
    let slug = "region-nearest/rotation-masters/reservation/level-split/\
                rsrc-indexed-reserve/split-demand";
    let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 2).with_spec(slug);
    cfg.time_scale = 0.05;
    cfg.monitor_period = Duration::from_millis(50);
    let cc = cfg
        .cluster_config()
        .with_regions(RegionTopology::even(6, 2, 2));
    let spec = StageSpec::parse(slug).expect("spec parses");
    let (a0, r0) = live_priors(&trace);
    let mut scheduler = SchedulerRegistry::builtin()
        .compose(&cc, &spec, a0, r0)
        .expect("live region pipeline composes");
    let live_path = std::env::temp_dir().join(format!(
        "msweb-golden-regions-live-{}.jsonl",
        std::process::id()
    ));
    let sink = JsonlSink::create(&live_path).expect("create live log");
    scheduler.set_observer(Some(Box::new(sink)));
    let summary = emulate_with(&cfg, &trace, scheduler, LiveRunOptions::new()).summary;
    assert_eq!(summary.completed, n as u64);
    let live_log = std::fs::read_to_string(&live_path).expect("read live log");
    let _ = std::fs::remove_file(&live_path);

    let parsed = TraceLog::parse(&live_log).expect("live log parses");
    assert_eq!(parsed.warnings, Vec::<String>::new());
    let meta = live_log.lines().next().expect("non-empty live log");
    assert!(
        meta.contains("\"regions\""),
        "live meta should embed the region topology: {meta}"
    );

    let sim_keys = key_sequence(decision_lines(&sim_log)[0]);
    let live_keys = key_sequence(decision_lines(&live_log)[0]);
    assert_eq!(
        sim_keys, live_keys,
        "sim and live region decision schemas diverged"
    );
    assert_eq!(
        &sim_keys[sim_keys.len() - 2..],
        &["origin".to_string(), "region".to_string()],
        "region runs append origin/region to the v2 schema"
    );
}

/// The conditional-serialisation contract protecting every pre-existing
/// golden fixture: without a region composition, neither the meta line
/// nor any decision record mentions regions, so regionless logs (and
/// the summaries derived from them) are byte-for-byte what they were
/// before the region tier existed.
#[test]
fn regionless_runs_emit_no_region_fields() {
    let trace = ucb()
        .generate(200, &DemandModel::simulation(40.0), 7)
        .scaled_to_rate(300.0);
    let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave)
        .with_masters(3)
        .with_seed(11);
    let path = std::env::temp_dir().join(format!(
        "msweb-golden-regions-plain-{}.jsonl",
        std::process::id()
    ));
    let sink = JsonlSink::create(&path).expect("create log");
    simulate(cfg, &trace, RunOptions::new().observer(Box::new(sink)));
    let log = std::fs::read_to_string(&path).expect("read log");
    let _ = std::fs::remove_file(&path);
    for key in ["\"origin\"", "\"region\"", "\"regions\""] {
        assert!(
            !log.contains(key),
            "regionless log must not serialise {key}"
        );
    }
}
