//! End-to-end equivalence of the O(log p) decision index with the dense
//! RSRC scan, at cluster sizes where the indexed path is active.
//!
//! Three full simulations of the same trace must produce byte-identical
//! `RunSummary` JSON:
//!
//! 1. the built-in `MasterSlave` scheduler (whose scorer is indexed),
//! 2. a composed pipeline with the dense `min-rsrc-reserve` scorer,
//! 3. a composed pipeline with the `rsrc-indexed-reserve` scorer,
//!
//! and the dense run must match the recorded fixture. Regenerate the
//! fixtures (only when a behaviour change is intended and reviewed) with:
//!
//! ```sh
//! MSWEB_BLESS=1 cargo test --test decision_index
//! ```

use msweb::prelude::*;
use msweb_cluster::{ClusterSim, SchedulerRegistry, StageSpec};
use msweb_simcore::SimDuration;

/// The stage pipeline equivalent to the built-in M/S scheduler.
const MS_SPEC: &str = "rotation-masters/reservation/level-split/{scorer}/split-demand";

fn golden_trace(p: usize) -> Trace {
    ucb()
        .generate(2_000, &DemandModel::simulation(40.0), 7)
        .scaled_to_rate(37.5 * p as f64)
}

/// The same `(a0, r0, mean demands)` estimation `simulate` performs,
/// so the composed runs see the scheduler parameters the built-in run
/// sees.
fn trace_params(trace: &Trace) -> (f64, f64, SimDuration, SimDuration) {
    let a0 = trace.summary().arrival_ratio_a.clamp(0.01, 10.0);
    let (mut ds, mut nd, mut ss, mut ns) = (0.0f64, 0u64, 0.0f64, 0u64);
    for r in &trace.requests {
        if r.class.is_dynamic() {
            ds += r.demand.service.as_secs_f64();
            nd += 1;
        } else {
            ss += r.demand.service.as_secs_f64();
            ns += 1;
        }
    }
    let r0 = ((ss / ns as f64) / (ds / nd as f64)).clamp(1e-4, 1.0);
    (
        a0,
        r0,
        SimDuration::from_secs_f64(ss / ns as f64),
        SimDuration::from_secs_f64(ds / nd as f64),
    )
}

fn config(p: usize) -> ClusterConfig {
    ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(p / 4)
        .with_seed(11)
}

fn run_builtin(p: usize, trace: &Trace) -> String {
    let (a0, r0, stat, dynamic) = trace_params(trace);
    let mut sim = ClusterSim::new(config(p), a0, r0).with_mean_demands(stat, dynamic);
    serde::to_json_string_pretty(&sim.run(trace))
}

fn run_composed(p: usize, trace: &Trace, scorer: &str) -> String {
    let (a0, r0, stat, dynamic) = trace_params(trace);
    let cfg = config(p);
    let spec = StageSpec::parse(&MS_SPEC.replace("{scorer}", scorer)).unwrap();
    let scheduler = SchedulerRegistry::builtin()
        .compose(&cfg, &spec, a0, r0)
        .unwrap();
    let mut sim = ClusterSim::with_scheduler(cfg, scheduler).with_mean_demands(stat, dynamic);
    serde::to_json_string_pretty(&sim.run(trace))
}

fn fixture_path(p: usize) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(format!("decision-index-p{p}.json"))
}

#[test]
fn indexed_and_dense_summaries_are_byte_identical() {
    let bless = std::env::var_os("MSWEB_BLESS").is_some();
    for p in [32usize, 128] {
        let trace = golden_trace(p);
        let dense = run_composed(p, &trace, "min-rsrc-reserve");
        let path = fixture_path(p);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &dense).unwrap();
        } else {
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"));
            assert_eq!(dense, want, "p={p}: dense summary drifted from fixture");
        }
        let indexed = run_composed(p, &trace, "rsrc-indexed-reserve");
        assert_eq!(
            indexed, dense,
            "p={p}: indexed scorer diverged from dense scan"
        );
        let builtin = run_builtin(p, &trace);
        assert_eq!(
            builtin, dense,
            "p={p}: built-in M/S diverged from dense pipeline"
        );
    }
}
