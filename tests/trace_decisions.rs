//! The `--trace-decisions` contract: both execution substrates — the
//! event-driven simulator and the live thread-backed emulation — drive
//! the *same* scheduler value, so the per-decision JSONL they emit is
//! schema-identical (same keys, same order, one object per placement).

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use msweb::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("msweb-{}-{name}", std::process::id()));
    p
}

/// The ordered key sequence of one JSONL line (vendored serde has no
/// parser, so extract keys lexically: every `"key":` at object level).
fn key_sequence(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        let key = &tail[..end];
        let after = &tail[end + 1..];
        if after.trim_start().starts_with(':') {
            keys.push(key.to_string());
        }
        rest = after;
    }
    keys
}

/// A Table-3-shaped workload: the six-node Sun-cluster demand model.
fn tab3_trace(n: usize) -> Trace {
    ucb()
        .generate(n, &DemandModel::sun_cluster(40.0), 9)
        .scaled_to_rate(40.0)
}

#[test]
fn sim_and_live_emit_schema_identical_jsonl() {
    let n = 120;
    let trace = tab3_trace(n);

    // Simulator run, traced.
    let sim_path = tmp("sim.jsonl");
    let sim_cfg = ClusterConfig::simulation(6, PolicyKind::MasterSlave)
        .with_masters(3)
        .with_mu_h(110.0)
        .with_seed(21);
    let sink = JsonlSink::create(&sim_path).expect("create sim log");
    let sim_summary = run_policy_with_observer(sim_cfg, &trace, Some(Box::new(sink)));
    assert_eq!(sim_summary.completed, n as u64);

    // Live run, traced — same scheduler type, same observer type.
    let live_path = tmp("live.jsonl");
    let mut live_cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 3);
    live_cfg.time_scale = 0.05;
    live_cfg.monitor_period = Duration::from_millis(50);
    live_cfg.seed = 21;
    let mut scheduler = live_scheduler(&live_cfg, &trace);
    let sink = JsonlSink::create(&live_path).expect("create live log");
    scheduler.set_observer(Some(Box::new(sink)));
    let live_summary = run_live_with(&live_cfg, &trace, scheduler);
    assert_eq!(live_summary.completed, n as u64);

    let sim_log = std::fs::read_to_string(&sim_path).expect("read sim log");
    let live_log = std::fs::read_to_string(&live_path).expect("read live log");
    let sim_lines: Vec<&str> = sim_log.lines().collect();
    let live_lines: Vec<&str> = live_log.lines().collect();

    // One record per placement; no failures injected, so exactly one per
    // request on both substrates.
    assert_eq!(
        sim_lines.len(),
        n,
        "sim log should have one line per request"
    );
    assert_eq!(
        live_lines.len(),
        n,
        "live log should have one line per request"
    );

    // Schema identity: every line of both logs carries the same keys in
    // the same order.
    let schema = key_sequence(sim_lines[0]);
    assert_eq!(
        schema,
        vec![
            "seq",
            "dynamic",
            "entry",
            "candidates",
            "scores",
            "theta_hat",
            "theta2_star",
            "chosen",
            "on_master",
            "redirected",
            "latency_us",
        ],
        "unexpected record schema"
    );
    for (i, line) in sim_lines.iter().chain(live_lines.iter()).enumerate() {
        assert_eq!(key_sequence(line), schema, "line {i} schema drifted");
    }

    // Both logs are ordered by the scheduler's own sequence counter.
    for (i, line) in sim_lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{}", i + 1)),
            "sim line {i} out of sequence: {line}"
        );
    }

    let _ = std::fs::remove_file(&sim_path);
    let _ = std::fs::remove_file(&live_path);
}

#[test]
fn replay_cli_writes_decision_log() {
    let path = tmp("cli.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_msweb"))
        .args([
            "replay",
            "--trace",
            "ucb",
            "--lambda",
            "200",
            "--p",
            "8",
            "--requests",
            "400",
            "--policy",
            "M/S",
            "--trace-decisions",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn msweb");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = std::fs::read_to_string(&path).expect("read CLI decision log");
    assert_eq!(log.lines().count(), 400);
    assert!(log.lines().all(|l| l.starts_with("{\"seq\":")));
    let _ = std::fs::remove_file(&path);
}
