//! The `--trace-decisions` contract: both execution substrates — the
//! event-driven simulator and the live thread-backed emulation — drive
//! the *same* scheduler value, so the per-decision JSONL they emit is
//! schema-identical (same keys, same order, one object per placement),
//! now wrapped in the v2 event stream (`meta` head line, `complete` and
//! `tick` events interleaved) that `msweb analyze` replays.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use msweb::bench::{tab3_traced, ExpConfig};
use msweb::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("msweb-{}-{name}", std::process::id()));
    p
}

/// The ordered key sequence of one JSONL line (extracted lexically:
/// every `"key":` at object level; no field nests another object).
fn key_sequence(line: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        let key = &tail[..end];
        let after = &tail[end + 1..];
        if after.trim_start().starts_with(':') {
            keys.push(key.to_string());
        }
        rest = after;
    }
    keys
}

/// The schema-v2 decision-line key order (see `sched::trace`).
const DECISION_SCHEMA: [&str; 20] = [
    "v",
    "ev",
    "seq",
    "dynamic",
    "entry",
    "candidates",
    "scores",
    "theta_hat",
    "theta2_star",
    "chosen",
    "on_master",
    "redirected",
    "latency_us",
    "req",
    "at_us",
    "demand_us",
    "w",
    "expected_us",
    "masters_ok",
    "restart",
];

fn decision_lines(log: &str) -> Vec<&str> {
    log.lines()
        .filter(|l| l.starts_with("{\"v\":2,\"ev\":\"decision\""))
        .collect()
}

/// A Table-3-shaped workload: the six-node Sun-cluster demand model.
fn tab3_trace(n: usize) -> Trace {
    ucb()
        .generate(n, &DemandModel::sun_cluster(40.0), 9)
        .scaled_to_rate(40.0)
}

/// Assert the full v2 contract on one substrate's log text.
fn check_log(log: &str, substrate: &str, n: usize) {
    // The stream parses cleanly — no warnings, every event known.
    let parsed = TraceLog::parse(log).expect("log parses");
    assert_eq!(parsed.warnings, Vec::<String>::new(), "{substrate} warned");

    // First line is the run's meta event naming the substrate.
    let first = log.lines().next().expect("non-empty log");
    assert!(
        first.starts_with(&format!(
            "{{\"v\":2,\"ev\":\"meta\",\"substrate\":\"{substrate}\""
        )),
        "{substrate} log should open with its meta line: {first}"
    );

    // One decision per request, in scheduler-sequence order, plus one
    // completion per request and at least one monitor tick.
    let decisions = decision_lines(log);
    assert_eq!(decisions.len(), n, "{substrate}: one decision per request");
    for (i, line) in decisions.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"v\":2,\"ev\":\"decision\",\"seq\":{}", i + 1)),
            "{substrate} decision {i} out of sequence: {line}"
        );
        assert_eq!(
            key_sequence(line),
            DECISION_SCHEMA,
            "{substrate} decision {i} schema drifted"
        );
    }
    let completes = log
        .lines()
        .filter(|l| l.starts_with("{\"v\":2,\"ev\":\"complete\""))
        .count();
    assert_eq!(completes, n, "{substrate}: one completion per request");
    let ticks = log
        .lines()
        .filter(|l| l.starts_with("{\"v\":2,\"ev\":\"tick\""))
        .count();
    assert!(ticks >= 1, "{substrate}: monitor ticks should be recorded");
}

#[test]
fn sim_and_live_emit_schema_identical_jsonl() {
    let n = 120;
    let trace = tab3_trace(n);

    // Simulator run, traced.
    let sim_path = tmp("sim.jsonl");
    let sim_cfg = ClusterConfig::simulation(6, PolicyKind::MasterSlave)
        .with_masters(3)
        .with_mu_h(110.0)
        .with_seed(21);
    let sink = JsonlSink::create(&sim_path).expect("create sim log");
    let sim_summary = simulate(sim_cfg, &trace, RunOptions::new().observer(Box::new(sink))).summary;
    assert_eq!(sim_summary.completed, n as u64);

    // Live run, traced — same scheduler type, same observer type.
    let live_path = tmp("live.jsonl");
    let mut live_cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 3);
    live_cfg.time_scale = 0.05;
    live_cfg.monitor_period = Duration::from_millis(50);
    live_cfg.seed = 21;
    let mut scheduler = live_scheduler(&live_cfg, &trace);
    let sink = JsonlSink::create(&live_path).expect("create live log");
    scheduler.set_observer(Some(Box::new(sink)));
    let live_summary = emulate_with(&live_cfg, &trace, scheduler, LiveRunOptions::new()).summary;
    assert_eq!(live_summary.completed, n as u64);

    let sim_log = std::fs::read_to_string(&sim_path).expect("read sim log");
    let live_log = std::fs::read_to_string(&live_path).expect("read live log");

    check_log(&sim_log, "sim", n);
    check_log(&live_log, "live", n);

    // Schema identity across substrates: the decision records carry the
    // same keys in the same order whichever substrate wrote them.
    assert_eq!(
        key_sequence(decision_lines(&sim_log)[0]),
        key_sequence(decision_lines(&live_log)[0]),
        "sim and live decision schemas diverged"
    );

    let _ = std::fs::remove_file(&sim_path);
    let _ = std::fs::remove_file(&live_path);
}

/// The `experiments` binary's Table-3 path appends every replay — live
/// and simulated — to one shared log through the same sink; the schema
/// contract must hold there too (the satellite emission path).
#[test]
fn tab3_emission_path_shares_the_decision_schema() {
    let path = tmp("tab3.jsonl");
    let _ = std::fs::remove_file(&path);
    let exp = ExpConfig {
        requests: 40,
        live_requests: 40,
        seed: 42,
        jobs: 1,
    };
    let rows = tab3_traced(&exp, 0.05, Some(&path));
    assert!(!rows.is_empty());

    let log = std::fs::read_to_string(&path).expect("read tab3 log");
    let parsed = TraceLog::parse(&log).expect("tab3 log parses");
    assert_eq!(parsed.warnings, Vec::<String>::new());

    // Every replay opens its own meta segment; both substrates appear.
    let metas: Vec<&str> = log
        .lines()
        .filter(|l| l.starts_with("{\"v\":2,\"ev\":\"meta\""))
        .collect();
    assert!(metas.len() >= 2, "expected one meta line per replay");
    assert!(
        metas.iter().any(|l| l.contains("\"substrate\":\"live\""))
            && metas.iter().any(|l| l.contains("\"substrate\":\"sim\"")),
        "tab3 should log both substrates"
    );

    // Every decision line — whichever substrate, whichever policy —
    // carries the identical v2 schema.
    let decisions = decision_lines(&log);
    assert!(!decisions.is_empty());
    for line in &decisions {
        assert_eq!(
            key_sequence(line),
            DECISION_SCHEMA,
            "schema drifted: {line}"
        );
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn replay_cli_writes_decision_log() {
    let path = tmp("cli.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_msweb"))
        .args([
            "replay",
            "--trace",
            "ucb",
            "--lambda",
            "200",
            "--p",
            "8",
            "--requests",
            "400",
            "--policy",
            "M/S",
            "--trace-decisions",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn msweb");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = std::fs::read_to_string(&path).expect("read CLI decision log");
    check_log(&log, "sim", 400);
    let _ = std::fs::remove_file(&path);
}
