//! Smoke tests of the `msweb` CLI binary.

use std::process::Command;

fn msweb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_msweb"))
        .args(args)
        .output()
        .expect("failed to spawn msweb")
}

#[test]
fn help_exits_with_usage() {
    let out = msweb(&["help"]);
    assert!(!out.status.success(), "help exits non-zero by convention");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("USAGE"));
    assert!(text.contains("plan"));
    assert!(text.contains("replay"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = msweb(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn plan_prints_masters() {
    let out = msweb(&["plan", "--lambda", "1000", "--a", "0.25", "--inv-r", "40"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("masters"), "{text}");
    assert!(text.contains("vs flat"), "{text}");
}

#[test]
fn plan_rejects_garbage() {
    let out = msweb(&["plan", "--lambda", "not-a-number"]);
    assert!(!out.status.success());
}

#[test]
fn traces_lists_all_four() {
    let out = msweb(&["traces"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for t in ["DEC", "UCB", "KSU", "ADL"] {
        assert!(text.contains(t), "missing {t} in:\n{text}");
    }
}

#[test]
fn replay_single_policy() {
    let out = msweb(&[
        "replay",
        "--trace",
        "ucb",
        "--lambda",
        "200",
        "--p",
        "8",
        "--requests",
        "800",
        "--policy",
        "M/S",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stretch"), "{text}");
    assert!(text.contains("completed"), "{text}");
}

#[test]
fn replay_requires_trace() {
    let out = msweb(&["replay", "--lambda", "200"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
}

#[test]
fn import_roundtrip_via_tempfile() {
    // Render a small trace to CLF, write it out, import it back.
    use msweb::prelude::*;
    use msweb::workload::clf;
    let trace = ksu()
        .generate(300, &DemandModel::simulation(40.0), 5)
        .scaled_to_rate(30.0);
    let text = clf::trace_to_clf(&trace);
    let path = std::env::temp_dir().join("msweb_cli_test.log");
    std::fs::write(&path, text).unwrap();

    let out = msweb(&[
        "import",
        "--log",
        path.to_str().unwrap(),
        "--p",
        "8",
        "--lambda",
        "100",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("imported 300 requests"), "{stdout}");
    assert!(stdout.contains("M/S"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn import_missing_file_fails_cleanly() {
    let out = msweb(&["import", "--log", "/nonexistent/access.log"]);
    assert!(!out.status.success());
}

#[test]
fn experiments_fig3a_quick_writes_json() {
    let path = std::env::temp_dir().join("msweb_cli_experiments.json");
    let out = msweb(&[
        "experiments",
        "--id",
        "fig3a",
        "--quick",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FIG 3(a)"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"Fig3a\""), "{json}");
    assert!(json.contains("stretch_ms"), "{json}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn experiments_rejects_unknown_id() {
    let out = msweb(&["experiments", "--id", "fig9z"]);
    assert!(!out.status.success());
}

#[test]
fn malformed_numeric_flags_are_hard_errors_naming_the_flag() {
    // (args, flag named in the error) — malformed, fractional-where-
    // integer, and non-finite values must all hard-error, never fall
    // back to a default silently.
    let cases: &[(&[&str], &str)] = &[
        (&["live", "--scale", "abc"], "--scale"),
        (&["replay", "--trace", "ucb", "--lambda", "NaN"], "--lambda"),
        (&["replay", "--trace", "ucb", "--lambda", "inf"], "--lambda"),
        (
            &[
                "replay",
                "--trace",
                "ucb",
                "--lambda",
                "200",
                "--requests",
                "1.5",
            ],
            "--requests",
        ),
        (
            &[
                "replay", "--trace", "ucb", "--lambda", "200", "--seed", "-3",
            ],
            "--seed",
        ),
        (
            &["experiments", "--pareto", "--test", "--jobs", "two"],
            "--jobs",
        ),
    ];
    for (args, flag) in cases {
        let out = msweb(args);
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(flag),
            "{args:?}: error must name {flag}: {err}"
        );
    }
}

/// The `--spec` error help must list exactly the stages the registry
/// can compose — derived from `SchedulerRegistry`'s name accessors, so
/// the rendered catalogue can never drift from the real stage space
/// (it used to hard-code the old five-stage pipeline).
#[test]
fn analyze_bad_spec_lists_the_registry_stage_catalogue() {
    use msweb::cluster::SchedulerRegistry;

    // A tiny real log so the parser reaches the --spec validation.
    let path = std::env::temp_dir().join(format!("msweb_cli_badspec_{}.jsonl", std::process::id()));
    let rec = msweb(&[
        "replay",
        "--trace",
        "ucb",
        "--lambda",
        "200",
        "--p",
        "8",
        "--requests",
        "20",
        "--policy",
        "M/S",
        "--trace-decisions",
        path.to_str().unwrap(),
    ]);
    assert!(rec.status.success());

    let out = msweb(&[
        "analyze",
        "--log",
        path.to_str().unwrap(),
        "--spec",
        "bogus/x",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("[region/]entry/admission/candidates/scorer/charge"),
        "error must show the six-part spec shape: {err}"
    );

    let reg = SchedulerRegistry::builtin();
    let scorers: Vec<String> = reg
        .scorer_names()
        .into_iter()
        .chain(reg.scorer_family_names().into_iter().map(|f| f + ":<arg>"))
        .collect();
    for (label, names) in [
        ("region:", reg.region_names()),
        ("entry:", reg.entry_names()),
        ("admission:", reg.admission_names()),
        ("candidates:", reg.candidate_names()),
        ("scorer:", scorers),
        ("charge:", reg.charge_names()),
    ] {
        let line = format!("  {label:<12} {}", names.join(" "));
        assert!(
            err.lines().any(|l| l == line),
            "stage list must render {line:?} from the registry, got:\n{err}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn regions_smoke_grid_prints_scenario_verdicts() {
    // Tiny request count so the debug binary stays fast; the full gate
    // (two-run determinism + flash-crowd verdict) runs in CI on the
    // release binary.
    let out = msweb(&["experiments", "--regions", "--quick", "--requests", "400"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGIONS"), "{stdout}");
    for scenario in ["diurnal", "flash-crowd", "outage"] {
        assert!(stdout.contains(scenario), "missing {scenario}: {stdout}");
    }
    for policy in ["region-nearest", "region-greedy"] {
        assert!(stdout.contains(policy), "missing {policy}: {stdout}");
    }
}

#[test]
fn pareto_smoke_grid_prints_attributed_front() {
    // Tiny filtered smoke grid so the debug binary stays fast; the full
    // gate (two-run determinism + hybrid check) runs in CI on the
    // release binary.
    let out = msweb(&[
        "experiments",
        "--pareto",
        "--quick",
        "--requests",
        "200",
        "--grid",
        "level-split",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PARETO"), "{stdout}");
    assert!(stdout.contains("first divergent stage"), "{stdout}");
    assert!(stdout.contains("front:"), "{stdout}");
}
