//! Smoke tests of the `msweb` CLI binary.

use std::process::Command;

fn msweb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_msweb"))
        .args(args)
        .output()
        .expect("failed to spawn msweb")
}

#[test]
fn help_exits_with_usage() {
    let out = msweb(&["help"]);
    assert!(!out.status.success(), "help exits non-zero by convention");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("USAGE"));
    assert!(text.contains("plan"));
    assert!(text.contains("replay"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = msweb(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn plan_prints_masters() {
    let out = msweb(&["plan", "--lambda", "1000", "--a", "0.25", "--inv-r", "40"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("masters"), "{text}");
    assert!(text.contains("vs flat"), "{text}");
}

#[test]
fn plan_rejects_garbage() {
    let out = msweb(&["plan", "--lambda", "not-a-number"]);
    assert!(!out.status.success());
}

#[test]
fn traces_lists_all_four() {
    let out = msweb(&["traces"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for t in ["DEC", "UCB", "KSU", "ADL"] {
        assert!(text.contains(t), "missing {t} in:\n{text}");
    }
}

#[test]
fn replay_single_policy() {
    let out = msweb(&[
        "replay",
        "--trace",
        "ucb",
        "--lambda",
        "200",
        "--p",
        "8",
        "--requests",
        "800",
        "--policy",
        "M/S",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stretch"), "{text}");
    assert!(text.contains("completed"), "{text}");
}

#[test]
fn replay_requires_trace() {
    let out = msweb(&["replay", "--lambda", "200"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
}

#[test]
fn import_roundtrip_via_tempfile() {
    // Render a small trace to CLF, write it out, import it back.
    use msweb::prelude::*;
    use msweb::workload::clf;
    let trace = ksu()
        .generate(300, &DemandModel::simulation(40.0), 5)
        .scaled_to_rate(30.0);
    let text = clf::trace_to_clf(&trace);
    let path = std::env::temp_dir().join("msweb_cli_test.log");
    std::fs::write(&path, text).unwrap();

    let out = msweb(&[
        "import",
        "--log",
        path.to_str().unwrap(),
        "--p",
        "8",
        "--lambda",
        "100",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("imported 300 requests"), "{stdout}");
    assert!(stdout.contains("M/S"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn import_missing_file_fails_cleanly() {
    let out = msweb(&["import", "--log", "/nonexistent/access.log"]);
    assert!(!out.status.success());
}

#[test]
fn experiments_fig3a_quick_writes_json() {
    let path = std::env::temp_dir().join("msweb_cli_experiments.json");
    let out = msweb(&[
        "experiments",
        "--id",
        "fig3a",
        "--quick",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FIG 3(a)"), "{stdout}");
    let json = std::fs::read_to_string(&path).unwrap();
    assert!(json.contains("\"Fig3a\""), "{json}");
    assert!(json.contains("stretch_ms"), "{json}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn experiments_rejects_unknown_id() {
    let out = msweb(&["experiments", "--id", "fig9z"]);
    assert!(!out.status.success());
}

#[test]
fn malformed_numeric_flags_are_hard_errors_naming_the_flag() {
    // (args, flag named in the error) — malformed, fractional-where-
    // integer, and non-finite values must all hard-error, never fall
    // back to a default silently.
    let cases: &[(&[&str], &str)] = &[
        (&["live", "--scale", "abc"], "--scale"),
        (&["replay", "--trace", "ucb", "--lambda", "NaN"], "--lambda"),
        (&["replay", "--trace", "ucb", "--lambda", "inf"], "--lambda"),
        (
            &[
                "replay",
                "--trace",
                "ucb",
                "--lambda",
                "200",
                "--requests",
                "1.5",
            ],
            "--requests",
        ),
        (
            &[
                "replay", "--trace", "ucb", "--lambda", "200", "--seed", "-3",
            ],
            "--seed",
        ),
        (
            &["experiments", "--pareto", "--test", "--jobs", "two"],
            "--jobs",
        ),
    ];
    for (args, flag) in cases {
        let out = msweb(args);
        assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(flag),
            "{args:?}: error must name {flag}: {err}"
        );
    }
}

#[test]
fn pareto_smoke_grid_prints_attributed_front() {
    // Tiny filtered smoke grid so the debug binary stays fast; the full
    // gate (two-run determinism + hybrid check) runs in CI on the
    // release binary.
    let out = msweb(&[
        "experiments",
        "--pareto",
        "--quick",
        "--requests",
        "200",
        "--grid",
        "level-split",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PARETO"), "{stdout}");
    assert!(stdout.contains("first divergent stage"), "{stdout}");
    assert!(stdout.contains("front:"), "{stdout}");
}
