//! Integration tests for the two analytic extensions: the pooled M/M/c
//! idealisation (what the Switch policy approximates) and bursty
//! flash-crowd arrivals (what the adaptive reservation absorbs).

use msweb::prelude::*;
use msweb::queueing::{pooling_gain, PooledModel};

#[test]
fn simulated_switch_lands_between_pooled_and_flat_analytics() {
    // The idealised least-connections switch cannot beat the pooled
    // M/M/c bound, and should comfortably beat random splitting.
    let spec = ucb();
    let (lambda, inv_r, p) = (1000.0, 40.0, 32);
    let w = Workload::from_ratios(lambda, spec.arrival_ratio_a(), 1200.0, 1.0 / inv_r).unwrap();
    let pooled = PooledModel::evaluate(&w, p).unwrap();
    let flat_analytic = FlatModel::evaluate(&w, p).unwrap();

    let trace = spec
        .generate(15_000, &DemandModel::simulation(inv_r), 7)
        .scaled_to_rate(lambda);
    let switch = simulate(
        ClusterConfig::simulation(p, PolicyKind::Switch),
        &trace,
        RunOptions::new(),
    )
    .summary;
    let flat = simulate(
        ClusterConfig::simulation(p, PolicyKind::Flat),
        &trace,
        RunOptions::new(),
    )
    .summary;

    assert!(
        switch.stretch < flat.stretch,
        "switch {} should beat flat {}",
        switch.stretch,
        flat.stretch
    );
    // The simulated switch sits near the pooled bound (within substrate
    // overheads), far below the flat analytic.
    assert!(
        switch.stretch < flat_analytic.stretch,
        "switch {} should beat even the flat *analytic* {}",
        switch.stretch,
        flat_analytic.stretch
    );
    assert!(
        switch.stretch > pooled.stretch * 0.8,
        "switch {} implausibly beats the pooled bound {}",
        switch.stretch,
        pooled.stretch
    );
}

#[test]
fn pooling_gain_is_real_and_bounded() {
    let w = Workload::from_ratios(1500.0, 0.3, 1200.0, 1.0 / 40.0).unwrap();
    let gain = pooling_gain(&w, 32).unwrap();
    assert!(gain > 1.0, "pooling gain {gain}");
    assert!(gain < 50.0, "pooling gain {gain} is implausible");
}

#[test]
fn ms_advantage_survives_flash_crowds() {
    // Measured finding (recorded in EXPERIMENTS.md): ON/OFF bursts cost
    // both architectures only a few percent of stretch at these loads —
    // the transient backlog drains within the OFF phase — and crucially
    // the M/S advantage over flat persists through the bursts.
    let spec = ksu();
    let lambda = 1200.0;
    let m = plan_masters(32, lambda, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let run = |bursty: bool, policy: PolicyKind| {
        let mut demand = DemandModel::simulation(40.0);
        if bursty {
            demand = demand.with_bursty_arrivals(3.0, 0.25, 40.0);
        }
        let trace = spec.generate(12_000, &demand, 3).scaled_to_rate(lambda);
        let cfg = ClusterConfig::simulation(32, policy).with_masters(m);
        simulate(cfg, &trace, RunOptions::new()).summary.stretch
    };
    let flat_bursty = run(true, PolicyKind::Flat);
    let ms_bursty = run(true, PolicyKind::MasterSlave);
    let ms_calm = run(false, PolicyKind::MasterSlave);
    assert!(
        ms_bursty < flat_bursty * 0.7,
        "M/S must keep its edge under bursts: {ms_bursty} vs flat {flat_bursty}"
    );
    assert!(
        ms_bursty < ms_calm * 1.5,
        "bursts should cost M/S only modestly: {ms_calm} -> {ms_bursty}"
    );
}

#[test]
fn bursty_trace_replays_completely_under_every_policy() {
    let demand = DemandModel::simulation(40.0).with_bursty_arrivals(5.0, 0.2, 10.0);
    let trace = adl().generate(3_000, &demand, 5).scaled_to_rate(300.0);
    for policy in [
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::Switch,
    ] {
        let cfg = ClusterConfig::simulation(8, policy).with_masters(3);
        let s = simulate(cfg, &trace, RunOptions::new()).summary;
        assert_eq!(s.completed, 3_000, "{policy:?}");
    }
}
