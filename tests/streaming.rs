//! Streaming `RequestSource` contract tests: generator/stream
//! equivalence, streamed-vs-materialized run parity on both substrates,
//! and bit-determinism of the sharded monitor tick.

use msweb::prelude::*;

/// `TraceSpec::generate(n)` and `TraceSpec::stream(n)` share one RNG
/// path: the streamed requests must be the materialized trace, request
/// for request, for every built-in trace family.
#[test]
fn stream_matches_generate_for_every_trace() {
    let demand = DemandModel::simulation(40.0);
    for spec in all_traces() {
        let n = 2_000;
        let trace = spec.generate(n, &demand, 1234);
        let streamed: Vec<Request> = spec.stream(n, &demand, 1234).collect();
        assert_eq!(
            trace.requests, streamed,
            "{}: stream() diverged from generate()",
            spec.name
        );
    }
}

/// `len_hint` counts down exactly while a generator source drains.
#[test]
fn gen_source_len_hint_is_exact() {
    let demand = DemandModel::simulation(40.0);
    let mut source = ucb().stream(100, &demand, 7);
    for remaining in (0..=100u64).rev() {
        assert_eq!(source.len_hint(), Some(remaining as usize));
        if remaining > 0 {
            assert!(source.next().is_some());
        }
    }
    assert!(source.next().is_none());
}

/// The simulator produces byte-identical `RunSummary` JSON whether the
/// workload arrives materialized or streamed, at both probe cluster
/// sizes of the scale budget.
#[test]
fn sim_streamed_summary_is_byte_identical() {
    let demand = DemandModel::simulation(40.0);
    for p in [32usize, 128] {
        let lambda = 31.25 * p as f64;
        let trace = ucb().generate(5_000, &demand, 42).scaled_to_rate(lambda);
        let m = plan_masters(p, lambda, ucb().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
        let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
            .with_masters(m)
            .with_seed(42);
        let materialized = simulate(cfg.clone(), &trace, RunOptions::new()).summary;
        let stats = WorkloadStats::from_trace(&trace);
        let streamed = simulate_source(cfg, trace.source(), stats, RunOptions::new()).summary;
        assert_eq!(materialized, streamed, "p={p}: summaries diverged");
        assert_eq!(
            serde::to_json_string_pretty(&materialized),
            serde::to_json_string_pretty(&streamed),
            "p={p}: summary JSON diverged"
        );
    }
}

/// `WorkloadStats::from_requests` over a stream reproduces the trace
/// estimation bit for bit (same summation order).
#[test]
fn workload_stats_stream_equals_trace() {
    let demand = DemandModel::simulation(40.0);
    for spec in all_traces() {
        let trace = spec.generate(3_000, &demand, 9);
        let from_trace = WorkloadStats::from_trace(&trace);
        let from_stream = WorkloadStats::from_requests(spec.stream(3_000, &demand, 9));
        assert_eq!(from_trace, from_stream, "{}", spec.name);
    }
}

/// The live substrate cannot be byte-deterministic (wall-clock timing),
/// but a streamed emulation must agree with the materialized one on
/// every timing-independent summary field.
#[test]
fn emu_streamed_run_matches_on_timing_independent_fields() {
    let trace = ucb()
        .generate(60, &DemandModel::sun_cluster(40.0), 5)
        .scaled_to_rate(40.0);
    let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 3);
    cfg.time_scale = 0.05;
    cfg.monitor_period = std::time::Duration::from_millis(50);

    let materialized = emulate(&cfg, &trace, LiveRunOptions::new()).summary;
    let scheduler = live_scheduler(&cfg, &trace);
    let streamed = emulate_source(
        &cfg,
        trace.clone().into_source(),
        live_stats(&trace),
        scheduler,
        LiveRunOptions::new(),
    )
    .summary;

    assert_eq!(materialized.completed, streamed.completed);
    assert_eq!(materialized.completed_static, streamed.completed_static);
    assert_eq!(materialized.completed_dynamic, streamed.completed_dynamic);
    assert_eq!(materialized.dropped, streamed.dropped);
    assert_eq!(materialized.restarted, streamed.restarted);
}

/// Sharding the per-tick node work must never change the summary: every
/// per-node refresh is a pure function and all cross-node folds stay
/// sequential, so any worker count reproduces the dense scan bit for
/// bit.
#[test]
fn sharded_tick_summary_is_bit_identical() {
    let demand = DemandModel::simulation(40.0);
    let trace = ksu().generate(4_000, &demand, 11).scaled_to_rate(2_000.0);
    let run_with = |workers: usize| {
        let cfg = ClusterConfig::simulation(64, PolicyKind::MasterSlave)
            .with_masters(8)
            .with_seed(11);
        let mut sim = policy_sim(cfg, &trace).with_tick_workers(workers);
        sim.run(&trace)
    };
    let sequential = run_with(1);
    for workers in [2, 3, 8, 0] {
        let sharded = run_with(workers);
        assert_eq!(sequential, sharded, "workers={workers}");
        assert_eq!(
            serde::to_json_string_pretty(&sequential),
            serde::to_json_string_pretty(&sharded),
            "workers={workers}: JSON diverged"
        );
    }
}
