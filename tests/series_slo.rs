//! Windowed telemetry series and SLO engine guarantees: the series
//! JSONL and the `slo-check` report are byte-deterministic for a fixed
//! seed/spec (at p = 32 and p = 128) and match golden fixtures; the sim
//! and live substrates emit one series schema; and histogram window
//! deltas re-merge exactly into the cumulative end-of-run histogram.
//!
//! Regenerate the fixtures (only when a schema change is intended and
//! reviewed) with:
//!
//! ```sh
//! MSWEB_BLESS=1 cargo test --test series_slo
//! ```

use std::path::PathBuf;

use msweb::prelude::*;
use msweb::simcore::{HistDelta, LogHistogram};
use proptest::prelude::*;

/// SLO rules exercising all three signals; the stretch burn pair
/// mirrors the fast/slow page-alert idiom.
const RULES: &str = r#"{
  "rules": [
    {"name": "stretch-page", "signal": "stretch", "budget": 2.0,
     "burn": [{"windows": 1, "rate": 3.0}, {"windows": 5, "rate": 1.0}]},
    {"name": "drop-budget", "signal": "drop_rate", "budget": 0.01,
     "burn": [{"windows": 3, "rate": 1.0}]},
    {"name": "clamp-budget", "signal": "clamp_rate", "budget": 0.5,
     "burn": [{"windows": 4, "rate": 1.0}]}
  ]
}"#;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("msweb-series-{}-{name}", std::process::id()));
    p
}

fn fixture_path(name: &str) -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(name)
}

fn assert_matches_fixture(got: &str, name: &str) {
    let path = fixture_path(name);
    if std::env::var_os("MSWEB_BLESS").is_some() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"));
    assert_eq!(got, want, "output drifted from fixture {path:?}");
}

/// The canonical instrumented replay (same workload as the telemetry
/// snapshot fixtures): KSU trace, master/slave, λ = 1000/s, seed 42.
fn series_run(p: usize) -> String {
    let trace = ksu()
        .generate(2_000, &DemandModel::simulation(40.0), 42)
        .scaled_to_rate(1_000.0);
    let m = plan_masters(p, 1_000.0, ksu().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(m)
        .with_seed(42);
    let buf = msweb::cluster::SharedSeriesBuffer::new();
    let rec = SeriesRecorder::to_writer(Box::new(buf.clone()));
    let outcome = simulate(cfg, &trace, RunOptions::new().series(rec));
    let rec = outcome.series.expect("series recorder handed back");
    assert!(rec.records() > 0, "run emitted at least one window record");
    buf.contents()
}

/// Record a traced master/slave run at `p` and parse the log back.
fn traced_log(p: usize) -> TraceLog {
    let trace = ksu()
        .generate(2_000, &DemandModel::simulation(40.0), 42)
        .scaled_to_rate(1_000.0);
    let m = plan_masters(p, 1_000.0, ksu().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(m)
        .with_seed(42);
    let path = tmp(&format!("slo-p{p}.jsonl"));
    let sink = JsonlSink::create(&path).expect("create log");
    let _ = simulate(cfg, &trace, RunOptions::new().observer(Box::new(sink)));
    let log = TraceLog::read(&path).expect("parse log");
    let _ = std::fs::remove_file(&path);
    log
}

#[test]
fn series_jsonl_is_byte_deterministic_and_matches_fixtures() {
    for p in [32, 128] {
        let first = series_run(p);
        let second = series_run(p);
        assert_eq!(
            first, second,
            "series JSONL must be byte-identical across runs at p={p}"
        );
        assert_matches_fixture(&first, &format!("series-p{p}.jsonl"));
    }
}

#[test]
fn slo_check_report_is_byte_deterministic_and_matches_fixtures() {
    let rules = SloRules::from_json(RULES).expect("rules parse");
    for p in [32, 128] {
        let log = traced_log(p);
        let first = check_log(&log, &rules).expect("check").render();
        let second = check_log(&log, &rules).expect("check").render();
        assert_eq!(
            first, second,
            "slo-check output must be byte-identical across checks at p={p}"
        );
        assert_matches_fixture(&first, &format!("slo-check-p{p}.txt"));
    }
}

#[test]
fn slo_check_is_deterministic_over_a_live_log() {
    let trace = ucb()
        .generate(60, &DemandModel::sun_cluster(40.0), 11)
        .scaled_to_rate(40.0);
    let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 3);
    cfg.time_scale = 0.05;
    let path = tmp("live-slo.jsonl");
    let sink = JsonlSink::create(&path).expect("create log");
    let mut scheduler = live_scheduler(&cfg, &trace);
    scheduler.set_observer(Some(Box::new(sink)));
    let _ = emulate_with(&cfg, &trace, scheduler, LiveRunOptions::new());
    let log = TraceLog::read(&path).expect("parse log");
    let _ = std::fs::remove_file(&path);
    let rules = SloRules::from_json(RULES).expect("rules parse");
    // The live log's timestamps are wall-clock, so its *content* varies
    // run to run — but checking one fixed log is a pure function.
    let first = check_log(&log, &rules).expect("check").render();
    let second = check_log(&log, &rules).expect("check").render();
    assert_eq!(first, second, "slo-check over a fixed live log is pure");
}

/// Every object key path in a JSON value, arrays descended through
/// their first element.
fn key_shape(v: &serde::Value, path: &str, out: &mut Vec<String>) {
    match v {
        serde::Value::Object(fields) => {
            for (k, child) in fields {
                let p = format!("{path}.{k}");
                out.push(p.clone());
                key_shape(child, &p, out);
            }
        }
        serde::Value::Array(items) => {
            if let Some(first) = items.first() {
                key_shape(first, &format!("{path}[]"), out);
            }
        }
        _ => {}
    }
}

fn shape_of_lines(jsonl: &str) -> Vec<Vec<String>> {
    jsonl
        .lines()
        .take(2) // header + first window record pin the schema
        .map(|line| {
            let v = serde::Value::parse(line).expect("series line parses");
            let mut keys = Vec::new();
            key_shape(&v, "", &mut keys);
            keys
        })
        .collect()
}

#[test]
fn sim_and_live_series_share_one_schema() {
    let sim = series_run(32);

    let trace = ucb()
        .generate(60, &DemandModel::sun_cluster(40.0), 11)
        .scaled_to_rate(40.0);
    let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 3);
    cfg.time_scale = 0.05;
    let buf = msweb::cluster::SharedSeriesBuffer::new();
    let rec = SeriesRecorder::to_writer(Box::new(buf.clone()));
    let scheduler = live_scheduler(&cfg, &trace);
    let outcome = emulate_with(&cfg, &trace, scheduler, LiveRunOptions::new().series(rec));
    let rec = outcome.series.expect("series recorder handed back");
    assert!(rec.records() > 0, "live run emitted a window record");
    let live = buf.contents();

    let sim_header = serde::Value::parse(sim.lines().next().unwrap()).unwrap();
    let live_header = serde::Value::parse(live.lines().next().unwrap()).unwrap();
    assert_eq!(
        sim_header.get("substrate").and_then(serde::Value::as_str),
        Some("sim")
    );
    assert_eq!(
        live_header.get("substrate").and_then(serde::Value::as_str),
        Some("live")
    );

    assert_eq!(
        shape_of_lines(&sim),
        shape_of_lines(&live),
        "sim and live series lines must expose the same key paths"
    );
}

proptest! {
    /// Re-merging every window's histogram delta must reconstruct the
    /// cumulative end-of-run histogram exactly — the algebra that lets
    /// a scraper integrate the series back into snapshot totals.
    #[test]
    fn histogram_window_deltas_remerge_exactly(
        windows in prop::collection::vec(
            prop::collection::vec(0u64..2_000_000, 0..40),
            1..12,
        )
    ) {
        let mut cumulative = LogHistogram::new();
        let mut baseline = LogHistogram::new();
        let mut merged = HistDelta::new();
        for window in &windows {
            for &v in window {
                cumulative.record(v);
            }
            let delta = cumulative.delta_since(&baseline);
            merged.merge(&delta);
            baseline = cumulative.clone();
        }
        let rebuilt = merged.to_histogram();
        prop_assert_eq!(rebuilt.count(), cumulative.count());
        prop_assert_eq!(rebuilt.sum(), cumulative.sum());
        let strip = |h: &LogHistogram| -> Vec<(usize, u64)> {
            h.nonzero_buckets().iter().map(|&(i, c, _, _)| (i, c)).collect()
        };
        prop_assert_eq!(strip(&rebuilt), strip(&cumulative));
    }
}
