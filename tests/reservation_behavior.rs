//! End-to-end behaviour of the reservation mechanism inside full
//! simulations: masters stay clean under comfortable load, statics are
//! protected, and the admission cap opens under pressure.

use msweb::prelude::*;

#[test]
fn masters_take_no_dynamics_under_comfortable_load() {
    let spec = ucb();
    let trace = spec
        .generate(10_000, &DemandModel::simulation(40.0), 3)
        .scaled_to_rate(800.0); // ~11% of a 32-node cluster
    let m = plan_masters(32, 800.0, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let mut cfg = ClusterConfig::simulation(32, PolicyKind::MasterSlave);
    cfg = cfg.with_masters(m);
    let s = simulate(cfg, &trace, RunOptions::new()).summary;
    let frac = s.dynamic_on_master as f64 / s.completed_dynamic.max(1) as f64;
    assert!(
        frac < 0.05,
        "masters should be nearly CGI-free at light load, got {frac:.3}"
    );
}

#[test]
fn masters_absorb_overflow_under_heavy_load() {
    let spec = ucb();
    // ~85% of the cluster: the cap should open and recruit masters.
    let trace = spec
        .generate(20_000, &DemandModel::simulation(80.0), 3)
        .scaled_to_rate(3200.0);
    let m = plan_masters(32, 3200.0, spec.arrival_ratio_a(), 1.0 / 80.0, 1200.0);
    let mut cfg = ClusterConfig::simulation(32, PolicyKind::MasterSlave);
    cfg = cfg.with_masters(m);
    let s = simulate(cfg, &trace, RunOptions::new()).summary;
    assert!(
        s.dynamic_on_master > 0,
        "near saturation the reservation should open and recruit masters"
    );
}

#[test]
fn static_requests_protected_relative_to_flat() {
    // The core separation promise: static stretch under M/S is far below
    // static stretch under flat at the same load.
    let spec = ksu();
    let trace = spec
        .generate(12_000, &DemandModel::simulation(80.0), 5)
        .scaled_to_rate(1000.0);
    let m = plan_masters(32, 1000.0, spec.arrival_ratio_a(), 1.0 / 80.0, 1200.0);

    let mut ms_cfg = ClusterConfig::simulation(32, PolicyKind::MasterSlave);
    ms_cfg = ms_cfg.with_masters(m);
    let ms = simulate(ms_cfg, &trace, RunOptions::new()).summary;
    let flat = simulate(
        ClusterConfig::simulation(32, PolicyKind::Flat),
        &trace,
        RunOptions::new(),
    )
    .summary;

    assert!(
        ms.stretch_static < flat.stretch_static * 0.8,
        "M/S static stretch {} should be well below flat's {}",
        ms.stretch_static,
        flat.stretch_static
    );
}

#[test]
fn no_reservation_floods_masters() {
    let spec = ksu();
    let trace = spec
        .generate(12_000, &DemandModel::simulation(80.0), 6)
        .scaled_to_rate(1000.0);
    let m = plan_masters(32, 1000.0, spec.arrival_ratio_a(), 1.0 / 80.0, 1200.0);

    let run = |policy| {
        let mut cfg = ClusterConfig::simulation(32, policy);
        cfg = cfg.with_masters(m);
        simulate(cfg, &trace, RunOptions::new()).summary
    };
    let ms = run(PolicyKind::MasterSlave);
    let nr = run(PolicyKind::MsNoReservation);
    let ms_frac = ms.dynamic_on_master as f64 / ms.completed_dynamic.max(1) as f64;
    let nr_frac = nr.dynamic_on_master as f64 / nr.completed_dynamic.max(1) as f64;
    assert!(
        nr_frac > ms_frac + 0.05,
        "without reservation masters should see much more CGI: {nr_frac:.3} vs {ms_frac:.3}"
    );
    // And their statics pay for it.
    assert!(
        nr.stretch_static > ms.stretch_static,
        "M/S-nr statics {} should be slower than M/S statics {}",
        nr.stretch_static,
        ms.stretch_static
    );
}

#[test]
fn monitor_staleness_degrades_gracefully() {
    // Much staler load info should hurt, but never collapse the system.
    let spec = ucb();
    let trace = spec
        .generate(10_000, &DemandModel::simulation(40.0), 8)
        .scaled_to_rate(1500.0);
    let m = plan_masters(32, 1500.0, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let run = |period_ms: u64| {
        let mut cfg = ClusterConfig::simulation(32, PolicyKind::MasterSlave);
        cfg = cfg.with_masters(m);
        cfg = cfg.with_monitor_period(SimDuration::from_millis(period_ms));
        simulate(cfg, &trace, RunOptions::new()).summary.stretch
    };
    let fresh = run(100);
    let stale = run(4000);
    assert!(
        stale >= fresh * 0.9,
        "staleness shouldn't magically help a lot"
    );
    assert!(
        stale <= fresh * 3.0,
        "staleness shouldn't collapse the system"
    );
}
