//! Smoke tests of the live thread-backed cluster: completeness, class
//! accounting, and agreement with the simulator on policy *ordering*.
//! Absolute live timings depend on the host; assertions here are loose.

use std::time::Duration;

use msweb::prelude::*;

fn live(policy: PolicyKind, m: usize, trace: &Trace, scale: f64) -> RunSummary {
    let mut cfg = LiveConfig::sun_cluster(policy, m);
    cfg.time_scale = scale;
    cfg.monitor_period = Duration::from_millis(100);
    emulate(&cfg, trace, LiveRunOptions::new()).summary
}

#[test]
fn live_accounts_every_request_and_class() {
    let trace = ucb()
        .generate(80, &DemandModel::sun_cluster(40.0), 21)
        .scaled_to_rate(40.0);
    let s = live(PolicyKind::MasterSlave, 3, &trace, 0.1);
    assert_eq!(s.completed, 80);
    assert_eq!(
        s.completed_static + s.completed_dynamic,
        s.completed,
        "class counts must partition completions"
    );
    let cgi_in_trace = trace
        .requests
        .iter()
        .filter(|r| r.class.is_dynamic())
        .count() as u64;
    assert_eq!(s.completed_dynamic, cgi_in_trace);
}

#[test]
fn live_stretch_is_at_least_one() {
    let trace = ksu()
        .generate(60, &DemandModel::sun_cluster(40.0), 22)
        .scaled_to_rate(20.0);
    let s = live(PolicyKind::Flat, 1, &trace, 0.2);
    assert!(s.stretch >= 1.0, "stretch {}", s.stretch);
}

#[test]
fn live_ms_keeps_masters_clean_at_light_load() {
    let trace = ucb()
        .generate(100, &DemandModel::sun_cluster(40.0), 23)
        .scaled_to_rate(30.0);
    let s = live(PolicyKind::MasterSlave, 3, &trace, 0.1);
    let frac = s.dynamic_on_master as f64 / s.completed_dynamic.max(1) as f64;
    assert!(
        frac < 0.4,
        "live reservation should keep most CGI off masters, got {frac}"
    );
}

#[test]
fn live_remote_transfers_deliver() {
    // With a single master, every dynamic request must be transferred to
    // a slave (remote latency path) and still complete.
    let trace = adl()
        .generate(60, &DemandModel::sun_cluster(20.0), 24)
        .scaled_to_rate(15.0);
    let s = live(PolicyKind::MasterSlave, 1, &trace, 0.2);
    assert_eq!(s.completed, 60);
    assert!(s.completed_dynamic > 0);
}
