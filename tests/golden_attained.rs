//! Golden fixtures for the attained-service scorers (`gittins`, `serpt`,
//! `las`) at p ∈ {32, 128} under `DemandVisibility::Hidden` — the regime
//! these policies exist for, where the scheduler sees no per-request
//! demand and must rank nodes by service received so far.
//!
//! Regenerate (only when a behaviour change is intended and reviewed)
//! with:
//!
//! ```sh
//! MSWEB_BLESS=1 cargo test --test golden_attained
//! ```

use msweb::prelude::*;

const SCORERS: [&str; 3] = ["gittins", "serpt", "las"];
const SIZES: [usize; 2] = [32, 128];

fn golden_run(scorer: &str, p: usize) -> RunSummary {
    let inv_r = 40.0;
    let a0 = ucb().arrival_ratio_a();
    let r0 = 1.0 / inv_r;
    // Load scales with the cluster so both sizes run at the same
    // per-node utilisation as the p=8 policy fixtures.
    let rate = 300.0 * (p as f64 / 8.0);
    let trace = ucb()
        .generate(1_500, &DemandModel::simulation(inv_r), 7)
        .scaled_to_rate(rate);
    let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(p / 4)
        .with_seed(11);
    let spec = format!("rotation-masters/attained/level-split/{scorer}/split-demand");
    let spec = StageSpec::parse(&spec).expect("well-formed stage spec");
    let scheduler = SchedulerRegistry::builtin()
        .compose(&cfg, &spec, a0, r0)
        .expect("attained pipeline composes");
    let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
        .with_priors(a0, r0)
        .with_visibility(DemandVisibility::Hidden);
    sim.run(&trace)
}

fn fixture_path(scorer: &str, p: usize) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(format!("{scorer}-hidden-p{p}.json"))
}

#[test]
fn attained_scorer_summaries_match_fixtures() {
    let bless = std::env::var_os("MSWEB_BLESS").is_some();
    let mut mismatches = Vec::new();
    for scorer in SCORERS {
        for p in SIZES {
            let got = serde::to_json_string_pretty(&golden_run(scorer, p));
            let path = fixture_path(scorer, p);
            if bless {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"));
            if got != want {
                mismatches.push(format!(
                    "{scorer} p={p}: summary drifted from fixture {path:?}\n\
                     --- fixture\n{want}\n--- got\n{got}"
                ));
            }
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n\n"));
}
