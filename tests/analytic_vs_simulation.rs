//! Cross-validation of the Section 3 analytic models against the
//! discrete-event simulator in the regime where both should agree: a flat
//! cluster with Poisson arrivals and (floored-)exponential demands.
//!
//! The OS model is not processor sharing — it has quanta, context
//! switches, fork costs and a real disk — so exact agreement is not
//! expected. What must hold: the simulator tracks the analytic curve's
//! *shape* (monotone in load, same order of magnitude, ordering of
//! configurations preserved).

use msweb::prelude::*;

/// Simulated flat stretch for a synthetic two-class workload calibrated
/// to the analytic parameterisation.
fn simulated_flat(lambda: f64, a_pct_cgi: f64, inv_r: f64, p: usize, seed: u64) -> f64 {
    let spec = TraceSpec {
        name: "SYN",
        year: 1999,
        paper_requests: 0,
        cgi_pct: a_pct_cgi,
        mean_interval_s: 1.0 / lambda,
        mean_html_bytes: 6000,
        mean_cgi_bytes: 4000,
        cgi_kind: CgiKind::MixedIndexSearch,
    };
    let trace = spec
        .generate(10_000, &DemandModel::simulation(inv_r), seed)
        .scaled_to_rate(lambda);
    let cfg = ClusterConfig::simulation(p, PolicyKind::Flat);
    simulate(cfg, &trace, RunOptions::new()).summary.stretch
}

fn analytic_flat(lambda: f64, a_pct_cgi: f64, inv_r: f64, p: usize) -> f64 {
    let a = a_pct_cgi / (100.0 - a_pct_cgi);
    let w = Workload::from_ratios(lambda, a, 1200.0, 1.0 / inv_r).unwrap();
    FlatModel::evaluate(&w, p).unwrap().stretch
}

#[test]
fn simulation_tracks_analytic_shape_across_load() {
    let mut last_sim = 0.0;
    for lambda in [400.0, 800.0, 1600.0] {
        let sim = simulated_flat(lambda, 20.0, 40.0, 32, 7);
        let ana = analytic_flat(lambda, 20.0, 40.0, 32);
        // Monotone in load.
        assert!(
            sim >= last_sim - 0.05,
            "simulated stretch dipped at λ={lambda}"
        );
        last_sim = sim;
        // Same order of magnitude as the analytic prediction; the MLFQ
        // substrate penalises small requests more than PS, so allow the
        // simulator to sit above the analytic value but not wildly so.
        assert!(
            sim >= ana * 0.7 && sim <= ana * 3.0 + 1.0,
            "λ={lambda}: simulated {sim} vs analytic {ana}"
        );
    }
}

#[test]
fn light_load_approaches_stretch_one_in_both() {
    let sim = simulated_flat(100.0, 20.0, 40.0, 32, 9);
    let ana = analytic_flat(100.0, 20.0, 40.0, 32);
    assert!(ana < 1.1);
    assert!(sim < 1.35, "idle simulated cluster stretch {sim}");
}

#[test]
fn theorem1_choice_wins_in_simulation_too() {
    // The analytic argmin m should be a good (not necessarily optimal)
    // simulated choice: better than both extremes.
    let spec = ksu();
    let (lambda, inv_r, p) = (1000.0, 40.0, 32);
    let trace = spec
        .generate(10_000, &DemandModel::simulation(inv_r), 5)
        .scaled_to_rate(lambda);
    let m_star = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / inv_r, 1200.0);

    let run_m = |m: usize| {
        let mut cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave);
        cfg = cfg.with_masters(m);
        simulate(cfg, &trace, RunOptions::new()).summary.stretch
    };
    let planned = run_m(m_star);
    let too_few = run_m(1);
    let too_many = run_m(p - 1);
    assert!(
        planned <= too_few * 1.05,
        "planned m={m_star} ({planned}) should beat m=1 ({too_few})"
    );
    assert!(
        planned <= too_many * 1.05,
        "planned m={m_star} ({planned}) should beat m={} ({too_many})",
        p - 1
    );
}

#[test]
fn reservation_bound_consistent_between_crates() {
    // The runtime bound and the analytic interval's theta2 coincide.
    let w = Workload::from_ratios(1000.0, 0.3, 1200.0, 1.0 / 40.0).unwrap();
    let model = MsModel::new(w, 32, 8).unwrap();
    let iv = model.theta_interval().unwrap();
    let rb = reservation_bound(8, 32, 0.3, 1.0 / 40.0);
    assert!((rb - iv.theta2.clamp(0.0, 1.0)).abs() < 1e-12);
}
