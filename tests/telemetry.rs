//! Telemetry snapshot guarantees: byte-determinism for a fixed
//! seed/spec (at p = 32 and p = 128), golden fixtures, JSON round-trip,
//! and schema identity between the simulator and the live emulation.
//!
//! Regenerate the fixtures (only when a schema change is intended and
//! reviewed) with:
//!
//! ```sh
//! MSWEB_BLESS=1 cargo test --test telemetry
//! ```

use msweb::prelude::*;

/// The canonical instrumented replay: KSU trace, master/slave policy,
/// λ = 1000/s, planned master count, fixed seed.
fn instrumented_run(p: usize) -> TelemetrySnapshot {
    let trace = ksu()
        .generate(2_000, &DemandModel::simulation(40.0), 42)
        .scaled_to_rate(1_000.0);
    let m = plan_masters(p, 1_000.0, ksu().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(m)
        .with_seed(42);
    simulate(cfg, &trace, RunOptions::new().telemetry(true))
        .telemetry
        .expect("telemetry enabled")
}

fn fixture_path(p: usize) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/golden")
        .join(format!("telemetry-p{p}.json"))
}

#[test]
fn snapshot_json_is_byte_deterministic_and_matches_fixtures() {
    let bless = std::env::var_os("MSWEB_BLESS").is_some();
    for p in [32, 128] {
        let first = instrumented_run(p).to_json();
        let second = instrumented_run(p).to_json();
        assert_eq!(
            first, second,
            "telemetry JSON must be byte-identical across runs at p={p}"
        );
        let path = fixture_path(p);
        if bless {
            std::fs::write(&path, &first).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {path:?}: {e}"));
        assert_eq!(
            first, want,
            "telemetry snapshot at p={p} drifted from fixture {path:?}"
        );
    }
}

#[test]
fn snapshot_round_trips_through_json() {
    let snap = instrumented_run(32);
    let back = TelemetrySnapshot::from_json(&snap.to_json()).expect("parse back");
    // Equality is over the deterministic encoding, which is exactly
    // what the JSON carries (wall-clock span sums are excluded).
    assert_eq!(snap, back);
    assert!(snap.sched.place_calls > 0);
    assert!(!snap.windows.is_empty(), "controller series sampled");
    assert_eq!(snap.node_busy.len(), 32);
}

/// Every object key path present in one substrate's snapshot, with
/// arrays descended through their first element.
fn key_shape(v: &serde::Value, path: &str, out: &mut Vec<String>) {
    match v {
        serde::Value::Object(fields) => {
            for (k, child) in fields {
                let p = format!("{path}.{k}");
                out.push(p.clone());
                key_shape(child, &p, out);
            }
        }
        serde::Value::Array(items) => {
            if let Some(first) = items.first() {
                key_shape(first, &format!("{path}[]"), out);
            }
        }
        _ => {}
    }
}

#[test]
fn sim_and_live_snapshots_share_one_schema() {
    let sim = instrumented_run(32);

    let trace = ucb()
        .generate(60, &DemandModel::sun_cluster(40.0), 11)
        .scaled_to_rate(40.0);
    let mut cfg = LiveConfig::sun_cluster(PolicyKind::MasterSlave, 3);
    cfg.time_scale = 0.05;
    let scheduler = live_scheduler(&cfg, &trace);
    let live = emulate_with(
        &cfg,
        &trace,
        scheduler,
        LiveRunOptions::new().telemetry(true),
    )
    .telemetry
    .expect("telemetry enabled");
    assert_eq!(live.substrate, "live");
    assert_eq!(sim.substrate, "sim");

    let (mut sim_keys, mut live_keys) = (Vec::new(), Vec::new());
    key_shape(&sim.to_value(), "", &mut sim_keys);
    key_shape(&live.to_value(), "", &mut live_keys);
    assert_eq!(
        sim_keys, live_keys,
        "sim and live snapshots must expose the same key paths"
    );
}
