//! Whole-pipeline determinism: generation → planning → simulation must be
//! bit-for-bit reproducible from the seed, across every policy.

use msweb::prelude::*;

fn full_pipeline(policy: PolicyKind, seed: u64) -> RunSummary {
    let spec = ksu();
    let trace = spec
        .generate(4_000, &DemandModel::simulation(40.0), seed)
        .scaled_to_rate(600.0);
    let m = plan_masters(16, 600.0, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let mut cfg = ClusterConfig::simulation(16, policy);
    cfg = cfg.with_masters(m);
    cfg = cfg.with_seed(seed);
    simulate(cfg, &trace, RunOptions::new()).summary
}

#[test]
fn identical_seeds_identical_summaries() {
    for policy in [
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::MsNoSampling,
        PolicyKind::MsNoReservation,
        PolicyKind::MsAllMasters,
        PolicyKind::MsPrime,
        PolicyKind::Redirect,
    ] {
        let a = full_pipeline(policy, 77);
        let b = full_pipeline(policy, 77);
        assert_eq!(a, b, "{policy:?} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = full_pipeline(PolicyKind::MasterSlave, 1);
    let b = full_pipeline(PolicyKind::MasterSlave, 2);
    assert_ne!(a, b, "seeds should change the run");
}

#[test]
fn trace_generation_independent_of_later_consumption() {
    // Generating a longer trace yields the shorter one as a prefix
    // (stream splitting must isolate the generator's RNG consumption).
    let spec = ucb();
    let d = DemandModel::simulation(40.0);
    let short = spec.generate(500, &d, 42);
    let long = spec.generate(1_000, &d, 42);
    for (a, b) in short.requests.iter().zip(&long.requests) {
        assert_eq!(a, b);
    }
}

#[test]
fn failure_runs_are_deterministic() {
    let spec = adl();
    let trace = spec
        .generate(3_000, &DemandModel::simulation(40.0), 9)
        .scaled_to_rate(400.0);
    let run = || {
        let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
        cfg = cfg.with_masters(3);
        let mut sim = ClusterSim::new(cfg, spec.arrival_ratio_a(), 1.0 / 40.0)
            .with_failures(FailurePlan::crash(6, SimTime::from_secs(2)));
        sim.run(&trace)
    };
    assert_eq!(run(), run());
}
