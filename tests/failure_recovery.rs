//! End-to-end failure injection: node crashes, restart of dynamic work,
//! recovery — the §2 fail-over story.

use msweb::prelude::*;

fn workload(seed: u64) -> Trace {
    adl()
        .generate(5_000, &DemandModel::simulation(40.0), seed)
        .scaled_to_rate(400.0)
}

#[test]
fn slave_crash_restarts_dynamics_and_loses_nothing_else() {
    let trace = workload(1);
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    cfg.masters = MasterSelection::Fixed(3);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.5);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0)
        .with_failures(FailurePlan::crash(6, mid));
    let s = sim.run(&trace);
    // Slaves only hold dynamic requests, and restart is enabled: every
    // request is eventually completed.
    assert_eq!(s.completed, 5_000, "dropped {}", s.dropped);
    assert_eq!(s.dropped, 0);
}

#[test]
fn crash_without_restart_drops_in_flight_work() {
    let trace = workload(2);
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    cfg.masters = MasterSelection::Fixed(3);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.5);
    let plan = FailurePlan::new(vec![FailureEvent {
        at: mid,
        node: 6,
        restart_dynamic: false,
        recover_at: None,
    }]);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let s = sim.run(&trace);
    assert_eq!(s.completed + s.dropped, 5_000);
    assert!(
        s.dropped > 0,
        "a loaded slave should have held work when it died"
    );
    assert_eq!(s.restarted, 0);
}

#[test]
fn multiple_failures_still_account_for_everything() {
    let trace = workload(3);
    let span = trace.span();
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    cfg.masters = MasterSelection::Fixed(3);
    let plan = FailurePlan::new(vec![
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.3),
            node: 5,
            restart_dynamic: true,
            recover_at: Some(SimTime::ZERO + span.mul_f64(0.8)),
        },
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.5),
            node: 7,
            restart_dynamic: true,
            recover_at: None,
        },
    ]);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let s = sim.run(&trace);
    assert_eq!(s.completed + s.dropped, 5_000);
    assert_eq!(s.dropped, 0, "restart-enabled crashes should drop nothing");
}

#[test]
fn switch_crash_restarts_and_accounts_for_everything() {
    // The L4-switch baseline has no master level; a crash must still
    // restart the dead node's dynamics and complete the workload.
    let trace = workload(5);
    let cfg = ClusterConfig::simulation(8, PolicyKind::Switch);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.5);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0)
        .with_failures(FailurePlan::crash(3, mid));
    let s = sim.run(&trace);
    assert_eq!(s.completed, 5_000, "dropped {}", s.dropped);
    assert_eq!(s.dropped, 0);
}

#[test]
fn redirect_crash_accounts_for_everything() {
    // Redirection changes only who pays the transfer latency; fail-over
    // accounting must be unaffected.
    let trace = workload(6);
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::Redirect);
    cfg.masters = MasterSelection::Fixed(3);
    let span = trace.span();
    let plan = FailurePlan::new(vec![
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.4),
            node: 6,
            restart_dynamic: true,
            recover_at: Some(SimTime::ZERO + span.mul_f64(0.9)),
        },
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.6),
            node: 4,
            restart_dynamic: false,
            recover_at: None,
        },
    ]);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let s = sim.run(&trace);
    assert_eq!(s.completed + s.dropped, 5_000);
    assert!(
        s.restarted > 0,
        "the restart-enabled crash should restart work"
    );
}

#[test]
fn crash_degrades_but_does_not_wedge_performance() {
    let trace = workload(4);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.4);

    let mut base_cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    base_cfg.masters = MasterSelection::Fixed(3);
    let healthy = run_policy(base_cfg.clone(), &trace);

    let mut sim = ClusterSim::new(base_cfg, adl().arrival_ratio_a(), 1.0 / 40.0)
        .with_failures(FailurePlan::crash(6, mid));
    let crashed = sim.run(&trace);

    assert!(
        crashed.stretch >= healthy.stretch * 0.95,
        "losing a node shouldn't help: {} vs {}",
        crashed.stretch,
        healthy.stretch
    );
    assert!(
        crashed.stretch <= healthy.stretch * 20.0,
        "losing one of 8 nodes must not collapse the cluster: {} vs {}",
        crashed.stretch,
        healthy.stretch
    );
}
