//! End-to-end failure injection: node crashes, restart of dynamic work,
//! recovery — the §2 fail-over story. The traced variants check that the
//! failure path is fully replayable from the decision log alone:
//! node-down/up and drop events land in the trace, restart placements
//! are flagged, and `analyze` reconstructs the same drop counts the live
//! `RunSummary` reported.

use msweb::prelude::*;

fn workload(seed: u64) -> Trace {
    adl()
        .generate(5_000, &DemandModel::simulation(40.0), seed)
        .scaled_to_rate(400.0)
}

#[test]
fn slave_crash_restarts_dynamics_and_loses_nothing_else() {
    let trace = workload(1);
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    cfg = cfg.with_masters(3);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.5);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0)
        .with_failures(FailurePlan::crash(6, mid));
    let s = sim.run(&trace);
    // Slaves only hold dynamic requests, and restart is enabled: every
    // request is eventually completed.
    assert_eq!(s.completed, 5_000, "dropped {}", s.dropped);
    assert_eq!(s.dropped, 0);
}

#[test]
fn crash_without_restart_drops_in_flight_work() {
    let trace = workload(2);
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    cfg = cfg.with_masters(3);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.5);
    let plan = FailurePlan::new(vec![FailureEvent {
        at: mid,
        node: 6,
        restart_dynamic: false,
        recover_at: None,
    }]);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let s = sim.run(&trace);
    assert_eq!(s.completed + s.dropped, 5_000);
    assert!(
        s.dropped > 0,
        "a loaded slave should have held work when it died"
    );
    assert_eq!(s.restarted, 0);
}

#[test]
fn multiple_failures_still_account_for_everything() {
    let trace = workload(3);
    let span = trace.span();
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    cfg = cfg.with_masters(3);
    let plan = FailurePlan::new(vec![
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.3),
            node: 5,
            restart_dynamic: true,
            recover_at: Some(SimTime::ZERO + span.mul_f64(0.8)),
        },
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.5),
            node: 7,
            restart_dynamic: true,
            recover_at: None,
        },
    ]);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let s = sim.run(&trace);
    assert_eq!(s.completed + s.dropped, 5_000);
    assert_eq!(s.dropped, 0, "restart-enabled crashes should drop nothing");
}

#[test]
fn switch_crash_restarts_and_accounts_for_everything() {
    // The L4-switch baseline has no master level; a crash must still
    // restart the dead node's dynamics and complete the workload.
    let trace = workload(5);
    let cfg = ClusterConfig::simulation(8, PolicyKind::Switch);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.5);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0)
        .with_failures(FailurePlan::crash(3, mid));
    let s = sim.run(&trace);
    assert_eq!(s.completed, 5_000, "dropped {}", s.dropped);
    assert_eq!(s.dropped, 0);
}

#[test]
fn redirect_crash_accounts_for_everything() {
    // Redirection changes only who pays the transfer latency; fail-over
    // accounting must be unaffected.
    let trace = workload(6);
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::Redirect);
    cfg = cfg.with_masters(3);
    let span = trace.span();
    let plan = FailurePlan::new(vec![
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.4),
            node: 6,
            restart_dynamic: true,
            recover_at: Some(SimTime::ZERO + span.mul_f64(0.9)),
        },
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.6),
            node: 4,
            restart_dynamic: false,
            recover_at: None,
        },
    ]);
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let s = sim.run(&trace);
    assert_eq!(s.completed + s.dropped, 5_000);
    assert!(
        s.restarted > 0,
        "the restart-enabled crash should restart work"
    );
}

/// Run a traced M/S simulation under `plan` and return the parsed log
/// with the run's summary.
fn traced_failure_run(seed: u64, plan: FailurePlan) -> (TraceLog, RunSummary) {
    let trace = workload(seed);
    let mut cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    cfg = cfg.with_masters(3);
    let mut path = std::env::temp_dir();
    path.push(format!("msweb-fail-{}-{seed}.jsonl", std::process::id()));
    let mut sim = ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let sink = JsonlSink::create(&path).expect("create failure log");
    sim.scheduler_mut().set_observer(Some(Box::new(sink)));
    let s = sim.run(&trace);
    // The sink buffers; dropping the sim drops the scheduler and the
    // observer with it, flushing the tail of the log.
    drop(sim);
    let log = TraceLog::read(&path).expect("parse failure log");
    let _ = std::fs::remove_file(&path);
    (log, s)
}

/// One recovering restart-crash plus one fatal no-restart crash: the
/// log must carry node-down, node-up, restart decisions *and* fail-over
/// drops.
fn two_crash_plan(span: SimDuration) -> FailurePlan {
    FailurePlan::new(vec![
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.5),
            node: 6,
            restart_dynamic: true,
            recover_at: Some(SimTime::ZERO + span.mul_f64(0.9)),
        },
        FailureEvent {
            at: SimTime::ZERO + span.mul_f64(0.7),
            node: 5,
            restart_dynamic: false,
            recover_at: None,
        },
    ])
}

#[test]
fn failure_events_appear_in_the_decision_log() {
    let span = workload(8).span();
    let (log, s) = traced_failure_run(8, two_crash_plan(span));
    assert!(s.restarted > 0, "restart crash should restart work");
    assert!(s.dropped > 0, "no-restart crash should drop work");

    let downs = log
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeDown { .. }))
        .count();
    let ups = log
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NodeUp { .. }))
        .count();
    assert_eq!(downs, 2, "both crashes should be logged");
    assert_eq!(ups, 1, "only node 6 recovers");

    let restart_decisions = log
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Decision(r) if r.restart))
        .count() as u64;
    assert_eq!(
        restart_decisions, s.restarted,
        "each successful restart is a restart-flagged decision"
    );

    let drop_events: Vec<&DropRecord> = log
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Drop(d) => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(drop_events.len() as u64, s.dropped, "every drop is logged");
    assert!(
        drop_events.iter().all(|d| d.restart),
        "these drops all happen on the fail-over path"
    );
}

#[test]
fn replayed_failure_run_matches_live_summary() {
    let span = workload(8).span();
    let (log, s) = traced_failure_run(8, two_crash_plan(span));

    // The failure scenario must be reconstructible from the log alone:
    // self-replay stays a fixed point across the crashes, and the
    // analyzer's drop/restart accounting matches the live summary.
    let report = analyze(&log, &ReplayOptions::default()).expect("analyze failure log");
    assert_eq!(
        report.divergent, 0,
        "failure-path self-replay must stay in lockstep"
    );
    assert_eq!(report.first_disagreement, None);
    assert_eq!(report.drops_recorded, s.dropped);
    assert_eq!(
        report.drops_replayed, s.dropped,
        "replay should drop exactly the requests the live run dropped"
    );
    assert_eq!(report.restarts_recorded, s.restarted);
    assert_eq!(report.completions, s.completed);
    assert_eq!(report.rescued, 0, "a fixed point rescues nothing");
}

#[test]
fn crash_degrades_but_does_not_wedge_performance() {
    let trace = workload(4);
    let mid = SimTime::ZERO + trace.span().mul_f64(0.4);

    let mut base_cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave);
    base_cfg = base_cfg.with_masters(3);
    let healthy = simulate(base_cfg.clone(), &trace, RunOptions::new()).summary;

    let mut sim = ClusterSim::new(base_cfg, adl().arrival_ratio_a(), 1.0 / 40.0)
        .with_failures(FailurePlan::crash(6, mid));
    let crashed = sim.run(&trace);

    assert!(
        crashed.stretch >= healthy.stretch * 0.95,
        "losing a node shouldn't help: {} vs {}",
        crashed.stretch,
        healthy.stretch
    );
    assert!(
        crashed.stretch <= healthy.stretch * 20.0,
        "losing one of 8 nodes must not collapse the cluster: {} vs {}",
        crashed.stretch,
        healthy.stretch
    );
}
