//! # msweb — master/slave scheduling for resource-intensive Web requests
//!
//! A full Rust reproduction of *Scheduling Optimization for
//! Resource-Intensive Web Requests on Server Clusters* (Huican Zhu, Ben
//! Smith, Tao Yang — SPAA 1999): the analytic queueing models and
//! Theorem 1, the RSRC cost predictor, reservation-based master/slave
//! scheduling, the trace-driven cluster simulator with its BSD-style node
//! OS model, synthetic regenerations of the paper's four Web traces, and
//! a live thread-backed cluster emulation for validating the simulator.
//!
//! ## Crates
//!
//! | crate | contents |
//! |-------|----------|
//! | [`simcore`] | event queue, deterministic RNG, distributions, statistics |
//! | [`queueing`] | Section 3: Flat / M/S / M/S′ stretch models, Theorem 1 |
//! | [`ossim`] | §5.1 node OS model: MLFQ CPU, round-robin disk, paging |
//! | [`workload`] | Table 1 trace generators, SPECweb96 file set, CGI models |
//! | [`cluster`] | the contribution: dispatcher, RSRC, reservation, simulator |
//! | [`emu`] | live thread-backed cluster (the Sun-prototype substitute) |
//! | [`bench`](mod@bench) | the experiment suite: parallel sweeps, the typed [`ExperimentRunner`](bench::ExperimentRunner) |
//!
//! ## Quickstart
//!
//! ```
//! use msweb::prelude::*;
//!
//! // A CGI-heavy workload on a 16-node cluster.
//! let trace = ucb()
//!     .generate(2_000, &DemandModel::simulation(40.0), 42)
//!     .scaled_to_rate(400.0);
//!
//! // Plan the master level with Theorem 1...
//! let m = plan_masters(16, 400.0, ucb().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
//!
//! // ...then replay under the paper's policy and the flat baseline.
//! let ms = ClusterConfig::simulation(16, PolicyKind::MasterSlave).with_masters(m);
//! let ms_run = simulate(ms, &trace, RunOptions::new()).summary;
//!
//! let flat_run = simulate(
//!     ClusterConfig::simulation(16, PolicyKind::Flat),
//!     &trace,
//!     RunOptions::new(),
//! )
//! .summary;
//!
//! assert!(ms_run.stretch <= flat_run.stretch * 1.1);
//! println!(
//!     "M/S improves stretch by {:.1}%",
//!     ms_run.improvement_over_pct(&flat_run)
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use msweb_bench as bench;
pub use msweb_cluster as cluster;
pub use msweb_emu as emu;
pub use msweb_ossim as ossim;
pub use msweb_queueing as queueing;
pub use msweb_simcore as simcore;
pub use msweb_workload as workload;

/// The commonly used items, re-exported flat.
pub mod prelude {
    pub use msweb_bench::{ExpConfig, ExperimentId, ExperimentReport, ExperimentRunner, Sweep};
    pub use msweb_cluster::{
        analyze, check_log, plan_masters, policy_sim, policy_sim_from_stats, render_top, simulate,
        simulate_source, table2_grid, AnalysisReport, AttainedService, ClusterConfig, ClusterSim,
        CollectingObserver, ConfigError, DecisionObserver, DecisionRecord, Dispatcher, DropRecord,
        DynScheduler, FailureEvent, FailurePlan, GreedyRegion, GridCell, JsonlSink, Level,
        LoadMonitor, MasterSelection, Metrics, NearestRegion, Placement, PlacementError,
        PolicyKind, PolicyScheduler, Provenance, RegionSelector, RegionTopology, RegionView,
        ReplayError, ReplayOptions, ReqKnowledge, ReservationController, RsrcPredictor, RunOptions,
        RunOutcome, RunSummary, SchedTelemetry, Schedule, Scheduler, SchedulerRegistry,
        ScorerPaths, SeriesRecorder, SloCheckReport, SloEngine, SloRules, StageKind, StageSpec,
        TelemetryProbe, TelemetrySnapshot, TraceEvent, TraceLog, WindowSample, WorkloadStats,
    };
    pub use msweb_emu::{
        emulate, emulate_source, emulate_with, live_scheduler, live_stats, LiveConfig, LiveOutcome,
        LiveRunOptions, MetricsServer,
    };
    pub use msweb_ossim::{DemandSpec, Node, OsParams};
    pub use msweb_queueing::{
        figure3, plan, reservation_bound, Fig3Config, FlatModel, HeteroCluster, MsModel,
        MsPrimeModel, ThetaRule, Workload,
    };
    pub use msweb_simcore::{SimDuration, SimRng, SimTime};
    pub use msweb_workload::{
        adl, all_traces, dec, ksu, replayed_traces, ucb, CgiKind, DemandModel, DemandVisibility,
        FileSet, GenSource, RateScaling, RegionMix, Request, RequestClass, RequestSource,
        ScaledSource, ServiceDemand, Trace, TraceSpec,
    };
}
