//! `msweb` — command-line front end to the cluster scheduling toolkit.
//!
//! ```text
//! msweb plan    --lambda 2000 --a 0.43 --inv-r 60 --p 32
//! msweb replay  --trace ksu --lambda 1000 --inv-r 80 --p 32 [--policy M/S] [--requests 20000]
//! msweb import  --log access.log [--lambda 800] [--p 16]
//! msweb traces
//! msweb analyze --log decisions.jsonl [--spec <spec>] [--json] [--fail-on-divergence]
//! msweb slo-check --log decisions.jsonl --rules rules.json [--json]
//! msweb live    [--rate 40] [--requests 300] [--scale 0.2] [--telemetry out.json] [--top]
//!               [--serve-metrics 127.0.0.1:9100] [--telemetry-series out.jsonl]
//! msweb experiments [--id fig4b] [--jobs 8] [--json out.json] [--quick] [--telemetry]
//! msweb metrics-dump [--from snapshot.json]
//! ```
//!
//! Every subcommand is a thin veneer over the public library API — the
//! same calls the examples and the experiment harness make.

use msweb::prelude::*;
use msweb::workload::clf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage_and_exit();
    };
    let flags = Flags::parse(&args[1..]);
    match cmd.as_str() {
        "plan" => cmd_plan(&flags),
        "replay" => cmd_replay(&flags),
        "import" => cmd_import(&flags),
        "traces" => cmd_traces(),
        "live" => cmd_live(&flags),
        "analyze" => cmd_analyze(&flags),
        "slo-check" => cmd_slo_check(&flags),
        "experiments" => cmd_experiments(&flags),
        "metrics-dump" => cmd_metrics_dump(&flags),
        "scale" => cmd_scale(&flags),
        "help" | "--help" | "-h" => usage_and_exit(),
        other => {
            eprintln!("unknown subcommand: {other}\n");
            usage_and_exit();
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "msweb — master/slave Web-cluster scheduling (SPAA'99 reproduction)

USAGE:
  msweb plan    --lambda <req/s> --a <ratio> --inv-r <1/r> [--p <nodes>]
                  size the master level with Theorem 1
  msweb replay  --trace <ucb|ksu|adl|dec> --lambda <req/s> [--inv-r <1/r>]
                  [--p <nodes>] [--policy <name>] [--requests <n>] [--seed <s>]
                  [--trace-decisions <path>]
                  [--telemetry <path>] [--metrics-out <path>]
                  [--telemetry-series <path>] [--slo-rules <rules.json>]
                  simulate a policy on a synthetic Table-1 trace;
                  --telemetry writes the deterministic snapshot JSON,
                  --metrics-out the Prometheus text dump,
                  --telemetry-series the per-monitor-window JSONL time
                  series, and --slo-rules evaluates burn-rate rules
                  during the run (alerts on stderr, and in the decision
                  log when --trace-decisions is active); all need a
                  single --policy run
  msweb import  --log <file> [--lambda <req/s>] [--p <nodes>] [--requests <n>]
                  replay your own Common Log Format access log
  msweb traces    print the built-in trace characteristics (Table 1)
  msweb live    [--rate <req/s>] [--requests <n>] [--scale <x>]
                  [--trace-decisions <path>]
                  [--telemetry <path>] [--metrics-out <path>] [--top]
                  [--telemetry-series <path>] [--slo-rules <rules.json>]
                  [--serve-metrics <addr>]
                  run the thread-backed live cluster (6 nodes); telemetry
                  instruments the master/slave run, --top prints a live
                  stderr table each monitor period, --serve-metrics
                  answers Prometheus scrapes (GET /metrics) at <addr>
                  (e.g. 127.0.0.1:9100; port 0 picks one) while the
                  master/slave run executes
  msweb analyze --log <decisions.jsonl> [--spec <stage-spec>] [--run <n>]
                  [--json [path]] [--fail-on-divergence]
                  replay a decision log: re-drive the recorded (or a
                  counterfactual --spec) composition over the recorded
                  stream and report per-stage divergence attribution and
                  stretch/balance deltas
  msweb slo-check --log <decisions.jsonl> --rules <rules.json> [--json]
                  re-derive the per-window signals (stretch, drop rate,
                  clamping) from a decision log and evaluate the SLO
                  burn-rate rules over them; deterministic for a fixed
                  log, exits 1 when any rule fired
  msweb experiments [--id <experiment>] [--jobs <n>] [--json <path>]
                  [--quick] [--seed <s>] [--trace-decisions <path>]
                  [--telemetry [path]] [--telemetry-series <path>]
                  regenerate the paper's tables/figures through the
                  parallel sweep runner (default: all experiments on all
                  cores; ids: fig3a fig3b tab1 tab2 fig4a fig4b fig5 tab3
                  ablation); --telemetry embeds an instrumented companion
                  replay's snapshot in each report (and writes it to
                  [path] when given); --telemetry-series streams the
                  companion replay's per-window JSONL time series to
                  <path>
  msweb experiments --unknown-sizes [--quick] [--jobs <n>] [--seed <s>]
                  [--json <path>] [--test]
                  sweep demand visibility (exact/noisy/hidden) x policy
                  (RSRC vs the attained-service scorers gittins/serpt/
                  las) and report end-to-end and model stretch per cell;
                  --test runs the CI smoke grid and fails unless an
                  attained policy beats RSRC under noisy and hidden
                  declarations
  msweb experiments --pareto [--grid <filter>] [--quick] [--jobs <n>]
                  [--seed <s>] [--requests <n>] [--json <path>] [--test]
                  enumerate every registry-composable stage combination
                  (pruned), score each on (model stretch, node-busy CV,
                  drop rate) under common random numbers, and print the
                  Pareto front with first-divergent-stage attribution
                  vs the RSRC baseline; --grid keeps only specs whose
                  slug contains <filter>; --test runs the bounded CI
                  smoke grid twice and fails on an empty front, a
                  missing hybrid, or byte-nondeterminism
  msweb experiments --regions [--quick] [--seed <s>] [--requests <n>]
                  [--json <path>] [--test]
                  drive the multi-region front tier through three
                  scenarios (diurnal rotation, migrating flash crowd,
                  region outage) x the two region selectors
                  (region-nearest, region-greedy) and compare them on
                  latency-weighted model stretch; --test runs the
                  bounded grid twice and fails on nondeterminism, an
                  incomplete grid, or greedy not winning flash-crowd
  msweb metrics-dump [--from <snapshot.json>] [--trace <name>]
                  [--lambda <req/s>] [--p <nodes>] [--requests <n>]
                  [--seed <s>] [--policy <name>]
                  print a Prometheus text exposition to stdout: from a
                  saved --telemetry snapshot with --from, otherwise from
                  a fresh short instrumented simulation
  msweb scale   [--p <list>] [--n <list>] [--trace <name>] [--seed <s>]
                  [--lambda-per-p <req/s/node>] [--tick-workers <w>]
                  [--out BENCH_scale.json] [--test] [--skip-parity]
                  stream p x n scale cells (default 1k,4k,10k nodes x
                  1M,10M requests) through the indexed M/S composition,
                  record wall-clock + peak RSS into BENCH_scale.json and
                  enforce the scale budget (peak RSS <= 1 GiB, streamed
                  == materialized summaries); --test runs the CI smoke
                  grid (p=1000, n=100k)

--trace-decisions logs every scheduling decision (entry node, candidate
set, per-candidate RSRC scores, reservation state, chosen node, transfer
latency) as one JSON object per line. The schema is identical whether
the records come from the simulator (replay/experiments) or the live
cluster (live/experiments tab3).

Policies: Flat, M/S, M/S-ns, M/S-nr, M/S-1, M/S', Redirect, Switch
(slugs flat, ms, ms-ns, ms-nr, ms-1, ms-prime, redirect, switch)"
    );
    std::process::exit(2);
}

/// Minimal `--key value` flag parser.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut out = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                // Boolean flags (e.g. --quick) take no value; only consume
                // the next token when it isn't itself a flag.
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().cloned().unwrap_or_default(),
                    _ => String::new(),
                };
                out.push((key.to_string(), value));
            } else {
                eprintln!("unexpected argument: {a}");
                std::process::exit(2);
            }
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A finite numeric flag. Malformed or non-finite values (`abc`,
    /// `NaN`, `inf`) are a hard error naming the offending flag — never
    /// a silent fallback to the default.
    fn num(&self, key: &str, default: f64) -> f64 {
        match self.get(key) {
            Some(v) => match v.parse::<f64>() {
                Ok(x) if x.is_finite() => x,
                _ => {
                    eprintln!("--{key} expects a finite number, got '{v}'");
                    std::process::exit(2);
                }
            },
            None => default,
        }
    }

    /// A non-negative integer flag, parsed directly (no silent
    /// truncation of fractional values, no negative-to-zero cast).
    fn usize(&self, key: &str, default: usize) -> usize {
        match self.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects a non-negative integer, got '{v}'");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    /// A `u64` flag (seeds), parsed directly like [`Flags::usize`].
    fn u64(&self, key: &str, default: u64) -> u64 {
        match self.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{key} expects a non-negative integer, got '{v}'");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    fn required(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            std::process::exit(2);
        })
    }
}

fn policy_by_name(name: &str) -> PolicyKind {
    name.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Open a decision log, truncating it; exits on I/O failure (an
/// explicitly requested trace that cannot be written is an error, not a
/// warning).
fn decision_sink(path: &str) -> Box<dyn DecisionObserver> {
    match JsonlSink::create(path) {
        Ok(sink) => Box::new(sink),
        Err(e) => {
            eprintln!("cannot create --trace-decisions file {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Open a decision log for appending (later runs of a multi-run
/// command share the file).
fn decision_sink_append(path: &str) -> Box<dyn DecisionObserver> {
    match JsonlSink::append(path) {
        Ok(sink) => Box::new(sink),
        Err(e) => {
            eprintln!("cannot open --trace-decisions file {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Load and validate an SLO rules document; exits on I/O or grammar
/// errors (a requested rule set that cannot be evaluated is an error).
fn load_slo_rules(path: &str) -> SloRules {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read --slo-rules file {path}: {e}");
        std::process::exit(1);
    });
    SloRules::from_json(&text).unwrap_or_else(|e| {
        eprintln!("bad --slo-rules file {path}: {e}");
        std::process::exit(2);
    })
}

/// Open a `--telemetry-series` JSONL sink; exits on I/O failure.
fn series_sink(path: &str) -> SeriesRecorder {
    SeriesRecorder::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create --telemetry-series file {path}: {e}");
        std::process::exit(1);
    })
}

/// Write the snapshot to the `--telemetry` (JSON) and `--metrics-out`
/// (Prometheus text) paths, whichever were requested.
fn write_telemetry(snap: &TelemetrySnapshot, json_path: Option<&str>, prom_path: Option<&str>) {
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("failed to write --telemetry file {path}: {e}");
            std::process::exit(1);
        }
        println!("telemetry snapshot written to {path}");
    }
    if let Some(path) = prom_path {
        if let Err(e) = std::fs::write(path, snap.to_prometheus()) {
            eprintln!("failed to write --metrics-out file {path}: {e}");
            std::process::exit(1);
        }
        println!("prometheus dump written to {path}");
    }
}

fn trace_by_name(name: &str) -> TraceSpec {
    match name.to_ascii_lowercase().as_str() {
        "ucb" => ucb(),
        "ksu" => ksu(),
        "adl" => adl(),
        "dec" => dec(),
        other => {
            eprintln!("unknown trace: {other} (expected ucb|ksu|adl|dec)");
            std::process::exit(2);
        }
    }
}

fn print_summary(label: &str, s: &RunSummary) {
    println!("{label}");
    println!("  stretch          {:>10.3}", s.stretch);
    println!("  static stretch   {:>10.3}", s.stretch_static);
    println!("  dynamic stretch  {:>10.3}", s.stretch_dynamic);
    println!(
        "  median static    {:>9.1}ms",
        s.median_static_response_s * 1e3
    );
    println!(
        "  median dynamic   {:>9.1}ms",
        s.median_dynamic_response_s * 1e3
    );
    println!(
        "  p99 static       {:>9.1}ms",
        s.p99_static_response_s * 1e3
    );
    println!("  completed        {:>10}", s.completed);
    if s.cache_hits > 0 {
        println!("  cache hits       {:>10}", s.cache_hits);
    }
}

fn cmd_plan(flags: &Flags) {
    let lambda = flags.num("lambda", 1000.0);
    let a = flags.num("a", 0.25);
    let inv_r = flags.num("inv-r", 40.0);
    let p = flags.usize("p", 32);
    let mu_h = flags.num("mu-h", 1200.0);

    let w = match Workload::from_ratios(lambda, a, mu_h, 1.0 / inv_r) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("invalid workload: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "workload: λ={lambda}/s, a={a}, 1/r={inv_r}, μ_h={mu_h}/s, p={p}\n\
         offered load {:.2} Erlangs ({:.1}% of the cluster)",
        w.offered_load(),
        100.0 * w.offered_load() / p as f64
    );
    match FlatModel::evaluate(&w, p) {
        Ok(f) => println!(
            "flat:  stretch {:.3} at {:.1}% utilisation",
            f.stretch,
            f.utilisation * 100.0
        ),
        Err(e) => println!("flat:  UNSTABLE ({e})"),
    }
    match plan(&w, p, ThetaRule::Midpoint) {
        Ok(pl) => {
            println!(
                "M/S:   m = {} masters, θ = {:.3}, stretch {:.3} ({:+.1}% vs flat)",
                pl.m,
                pl.theta,
                pl.stretch_ms,
                pl.improvement_over_flat_pct()
            );
            println!(
                "       beats-flat interval θ ∈ [{:.3}, {:.3}], runtime bound θ2* = {:.3}",
                pl.interval.theta1,
                pl.interval.theta2,
                reservation_bound(pl.m, p, a, 1.0 / inv_r)
            );
            // The planner actually deployed (with the static-promptness floor):
            let deployed = plan_masters(p, lambda, a, 1.0 / inv_r, mu_h);
            if deployed != pl.m {
                println!("       deployed m = {deployed} (static-promptness floor applied)");
            }
        }
        Err(e) => println!("M/S:   no feasible configuration ({e})"),
    }
}

fn cmd_experiments(flags: &Flags) {
    if flags.get("regions").is_some() {
        cmd_regions(flags);
        return;
    }
    if flags.get("pareto").is_some() {
        cmd_pareto(flags);
        return;
    }
    if flags.get("unknown-sizes").is_some() {
        cmd_unknown_sizes(flags);
        return;
    }
    let quick = flags.get("quick").is_some();
    let jobs = flags.usize("jobs", 0);
    let mut exp = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    exp.seed = flags.u64("seed", exp.seed);
    let telemetry = flags.get("telemetry");
    let runner = ExperimentRunner::new(exp)
        .parallelism(jobs)
        .live_time_scale(if quick { 0.3 } else { 1.0 })
        .trace_decisions(flags.get("trace-decisions").map(std::path::PathBuf::from))
        .telemetry(telemetry.is_some());

    let ids: Vec<ExperimentId> = match flags.get("id") {
        Some(name) => match ExperimentId::parse(name) {
            Some(id) => vec![id],
            None => {
                eprintln!("unknown experiment id: {name}");
                std::process::exit(2);
            }
        },
        None => ExperimentId::ALL.to_vec(),
    };

    let mut reports = Vec::with_capacity(ids.len());
    for id in ids {
        let report = runner.run(id);
        println!("{}", report.render());
        reports.push(report);
    }
    if let Some(path) = flags.get("json") {
        let body: Vec<String> = reports.iter().map(ExperimentReport::to_json).collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {} report(s) to {path}", reports.len());
    }
    // `--telemetry <path>` also writes the companion snapshot on its
    // own; every report of one invocation embeds the same one (the
    // runner's canonical replay depends only on the ExpConfig).
    if let Some(path) = telemetry.filter(|p| !p.is_empty()) {
        if let Some(snap) = reports.iter().find_map(|r| r.telemetry.as_ref()) {
            if let Err(e) = std::fs::write(path, snap.to_json()) {
                eprintln!("failed to write --telemetry file {path}: {e}");
                std::process::exit(1);
            }
            println!("telemetry snapshot written to {path}");
        }
    }
    // `--telemetry-series <path>` streams the same canonical companion
    // replay's per-window time series (byte-deterministic for a fixed
    // seed and sizing).
    if let Some(path) = flags.get("telemetry-series") {
        match runner.write_telemetry_series(path) {
            Ok(records) => println!("telemetry series ({records} windows) written to {path}"),
            Err(e) => {
                eprintln!("failed to write --telemetry-series file {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `msweb metrics-dump`: a Prometheus text exposition on stdout — from
/// a saved `--telemetry` snapshot (`--from`), or from a fresh short
/// instrumented simulation (KSU master/slave cell by default).
/// `msweb experiments --unknown-sizes`: the demand-visibility sweep —
/// what happens to placement quality when per-request demand
/// declarations decay from exact to noisy to absent.
fn cmd_unknown_sizes(flags: &Flags) {
    let test = flags.get("test").is_some();
    let quick = test || flags.get("quick").is_some();
    let mut exp = if quick {
        msweb::bench::ExpConfig::quick()
    } else {
        msweb::bench::ExpConfig::default()
    };
    exp.seed = flags.u64("seed", exp.seed);
    exp.jobs = flags.usize("jobs", exp.jobs);

    let rows = msweb::bench::unknown_sizes(&exp);
    println!(
        "unknown-sizes sweep: UCB x {} requests, p=32, visibility x policy\n",
        exp.requests
    );
    println!(
        "{:<10} {:<9} {:>9} {:>14}",
        "visibility", "policy", "stretch", "model stretch"
    );
    let mut last_vis = "";
    for r in &rows {
        if r.visibility != last_vis && !last_vis.is_empty() {
            println!();
        }
        last_vis = &r.visibility;
        println!(
            "{:<10} {:<9} {:>9.3} {:>14.4}",
            r.visibility, r.policy, r.stretch, r.model_stretch
        );
    }

    if let Some(path) = flags.get("json") {
        let json = serde::to_json_string_pretty(&rows) + "\n";
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {} rows to {path}", rows.len());
    }

    match msweb::bench::unknown_sizes_check(&rows) {
        Ok(()) => println!(
            "\nOK: an attained-service policy beats RSRC under noisy and hidden declarations"
        ),
        Err(msg) => {
            eprintln!("\nunknown-sizes gate failed: {msg}");
            if test {
                std::process::exit(1);
            }
        }
    }
}

/// `msweb experiments --pareto`: the stage-space Pareto sweep — every
/// registry-composable pipeline scored on (model stretch, node-busy CV,
/// drop rate), the 3-D front extracted deterministically, and each
/// frontier point attributed to its first divergent stage vs the RSRC
/// baseline. `--test` runs the bounded smoke grid twice and fails on an
/// empty front, a missing hybrid, or byte-nondeterminism.
fn cmd_pareto(flags: &Flags) {
    use msweb::bench::{pareto, pareto_check, StageGrid};
    let test = flags.get("test").is_some();
    let quick = test || flags.get("quick").is_some();
    let mut exp = if quick {
        msweb::bench::ExpConfig::quick()
    } else {
        msweb::bench::ExpConfig::default()
    };
    exp.seed = flags.u64("seed", exp.seed);
    exp.jobs = flags.usize("jobs", exp.jobs);
    exp.requests = flags.usize("requests", exp.requests);

    let mut grid = if test {
        StageGrid::smoke()
    } else {
        StageGrid::full(&SchedulerRegistry::builtin())
    };
    if let Some(filter) = flags.get("grid") {
        grid = grid.with_filter(filter);
    }

    let report = pareto(&exp, &grid);
    print!("{}", report.render());

    match flags.get("json") {
        // `--json` with no value streams to stdout; with a value it
        // writes the file and keeps the human table on stdout.
        Some("") => print!("{}", report.to_json()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote the frontier report to {path}");
        }
        None => {}
    }

    if test {
        // Byte-determinism gate: the identical configuration must
        // serialise identically on a second full run.
        let again = pareto(&exp, &grid);
        if report.to_json() != again.to_json() {
            eprintln!("pareto gate failed: two identical runs produced different JSON");
            std::process::exit(1);
        }
        println!("determinism: two runs byte-identical");
    }

    match pareto_check(&report) {
        Ok(()) => println!(
            "OK: non-empty front with >=1 hybrid, every point attributed vs {}",
            report.baseline
        ),
        Err(msg) => {
            eprintln!("pareto gate failed: {msg}");
            if test {
                std::process::exit(1);
            }
        }
    }
}

/// `msweb experiments --regions`: the multi-region scenario grid —
/// three scenarios (diurnal rotation, migrating flash crowd, region
/// outage) x the two region selectors, scored on latency-weighted
/// model stretch. `--test` runs the bounded grid twice and fails on
/// byte-nondeterminism, an incomplete grid, or the greedy selector not
/// beating `region-nearest` in the flash-crowd scenario.
fn cmd_regions(flags: &Flags) {
    use msweb::bench::{regions, regions_check};
    let test = flags.get("test").is_some();
    let quick = test || flags.get("quick").is_some();
    let mut exp = if quick {
        msweb::bench::ExpConfig::quick()
    } else {
        msweb::bench::ExpConfig::default()
    };
    exp.seed = flags.u64("seed", exp.seed);
    exp.requests = flags.usize("requests", exp.requests);

    let report = regions(&exp);
    print!("{}", report.render());

    match flags.get("json") {
        // `--json` with no value streams to stdout; with a value it
        // writes the file and keeps the human table on stdout.
        Some("") => print!("{}", report.to_json()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote the scenario report to {path}");
        }
        None => {}
    }

    if test {
        // Byte-determinism gate: the identical configuration must
        // serialise identically on a second full run.
        let again = regions(&exp);
        if report.to_json() != again.to_json() {
            eprintln!("regions gate failed: two identical runs produced different JSON");
            std::process::exit(1);
        }
        println!("determinism: two runs byte-identical");
    }

    match regions_check(&report) {
        Ok(()) => println!(
            "OK: full {}x{} grid, region-greedy wins flash-crowd on latency-weighted stretch",
            msweb::bench::SCENARIOS.len(),
            msweb::bench::REGION_POLICIES.len()
        ),
        Err(msg) => {
            eprintln!("regions gate failed: {msg}");
            if test {
                std::process::exit(1);
            }
        }
    }
}

fn cmd_metrics_dump(flags: &Flags) {
    if let Some(path) = flags.get("from") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read snapshot {path}: {e}");
            std::process::exit(1);
        });
        let snap = TelemetrySnapshot::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse snapshot {path}: {e}");
            std::process::exit(1);
        });
        print!("{}", snap.to_prometheus());
        return;
    }
    let spec = trace_by_name(flags.get("trace").unwrap_or("ksu"));
    let lambda = flags.num("lambda", 1000.0);
    let p = flags.usize("p", 32);
    let n = flags.usize("requests", 2_000);
    let seed = flags.u64("seed", 42);
    let policy = policy_by_name(flags.get("policy").unwrap_or("ms"));
    let trace = spec
        .generate(n, &DemandModel::simulation(40.0), seed)
        .scaled_to_rate(lambda);
    let m = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let cfg = ClusterConfig::simulation(p, policy)
        .with_masters(m)
        .with_seed(seed);
    let outcome = simulate(cfg, &trace, RunOptions::new().telemetry(true));
    let snap = outcome.telemetry.expect("telemetry enabled");
    print!("{}", snap.to_prometheus());
}

fn cmd_replay(flags: &Flags) {
    let spec = trace_by_name(flags.required("trace"));
    let lambda = flags.num("lambda", 1000.0);
    let inv_r = flags.num("inv-r", 40.0);
    let p = flags.usize("p", 32);
    let n = flags.usize("requests", 20_000);
    let seed = flags.u64("seed", 42);

    let trace = spec
        .generate(n, &DemandModel::simulation(inv_r), seed)
        .scaled_to_rate(lambda);
    let m = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / inv_r, 1200.0);
    println!(
        "replaying {} × {n} requests at {lambda}/s on p={p} (m={m}, 1/r={inv_r})\n",
        spec.name
    );

    let log = flags.get("trace-decisions");
    let tele_json = flags.get("telemetry");
    let metrics_out = flags.get("metrics-out");
    let series_path = flags.get("telemetry-series");
    let slo_rules = flags.get("slo-rules").map(load_slo_rules);
    match flags.get("policy") {
        Some(name) => {
            let policy = policy_by_name(name);
            let cfg = ClusterConfig::simulation(p, policy)
                .with_masters(m)
                .with_seed(seed);
            if tele_json.is_some() || metrics_out.is_some() {
                let mut sim = policy_sim(cfg, &trace).with_telemetry();
                if let Some(path) = series_path {
                    sim = sim.with_series(series_sink(path));
                }
                if let Some(rules) = slo_rules {
                    sim = sim.with_slo(SloEngine::new(rules));
                }
                if let Some(path) = log {
                    sim.scheduler_mut().set_observer(Some(decision_sink(path)));
                }
                let s = sim.run(&trace);
                print_summary(policy.label(), &s);
                if let Some(engine) = sim.slo_engine() {
                    println!("slo alerts fired: {}", engine.alerts_fired());
                }
                let snap = sim.telemetry_snapshot().expect("telemetry enabled");
                write_telemetry(&snap, tele_json, metrics_out);
            } else {
                let mut opts = RunOptions::new();
                if let Some(path) = log {
                    opts = opts.observer(decision_sink(path));
                }
                if let Some(path) = series_path {
                    opts = opts.series(series_sink(path));
                }
                if let Some(rules) = slo_rules {
                    opts = opts.slo(SloEngine::new(rules));
                }
                let outcome = simulate(cfg, &trace, opts);
                print_summary(policy.label(), &outcome.summary);
                if let Some(engine) = &outcome.slo {
                    println!("slo alerts fired: {}", engine.alerts_fired());
                }
            }
            if let Some(path) = series_path {
                println!("telemetry series written to {path}");
            }
        }
        None => {
            if tele_json.is_some()
                || metrics_out.is_some()
                || series_path.is_some()
                || slo_rules.is_some()
            {
                eprintln!(
                    "--telemetry/--metrics-out/--telemetry-series/--slo-rules need a \
                     single --policy replay"
                );
                std::process::exit(2);
            }
            // Truncate the shared log once, then let every policy's
            // replay append to it.
            let mut first = true;
            for policy in [
                PolicyKind::Flat,
                PolicyKind::MasterSlave,
                PolicyKind::MsNoReservation,
                PolicyKind::MsAllMasters,
                PolicyKind::Switch,
            ] {
                let cfg = ClusterConfig::simulation(p, policy)
                    .with_masters(m)
                    .with_seed(seed);
                let mut opts = RunOptions::new();
                if let Some(path) = log {
                    opts = opts.observer(if first {
                        decision_sink(path)
                    } else {
                        decision_sink_append(path)
                    });
                }
                first = false;
                let s = simulate(cfg, &trace, opts).summary;
                println!("{:<9} stretch {:>8.3}", policy.label(), s.stretch);
            }
        }
    }
    if let Some(path) = log {
        println!("\ndecision log written to {path}");
    }
}

/// Render the stage catalogue for `--spec` error messages, one line
/// per pipeline stage, generated from the live registry so the list
/// can never drift from what actually composes.
fn registered_stages() -> String {
    let reg = SchedulerRegistry::builtin();
    let line = |label: &str, names: Vec<String>| format!("  {label:<12} {}\n", names.join(" "));
    format!(
        "registered stages ([region/]entry/admission/candidates/scorer/charge):\n{}{}{}{}{}{}",
        line("region:", reg.region_names()),
        line("entry:", reg.entry_names()),
        line("admission:", reg.admission_names()),
        line("candidates:", reg.candidate_names()),
        line(
            "scorer:",
            reg.scorer_names()
                .into_iter()
                .chain(reg.scorer_family_names().into_iter().map(|f| f + ":<arg>"))
                .collect(),
        ),
        line("charge:", reg.charge_names()),
    )
}

fn cmd_analyze(flags: &Flags) {
    let path = flags.required("log");
    let log = match TraceLog::read(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot read decision log {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut opts = ReplayOptions {
        run: flags.usize("run", 0),
        ..ReplayOptions::default()
    };
    if let Some(spec) = flags.get("spec") {
        match StageSpec::parse(spec) {
            Ok(s) => opts.spec = Some(s),
            Err(e) => {
                eprintln!("bad --spec: {e}");
                eprint!("{}", registered_stages());
                std::process::exit(2);
            }
        }
    }
    let report = match analyze(&log, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot analyze {path}: {e}");
            std::process::exit(1);
        }
    };

    match flags.get("json") {
        // `--json` with no value streams to stdout; with a value it
        // writes the file and keeps the human summary on stdout.
        Some("") => print!("{}", report.to_json()),
        Some(out) => {
            if let Err(e) = std::fs::write(out, report.to_json()) {
                eprintln!("failed to write {out}: {e}");
                std::process::exit(1);
            }
            print_analysis(&report);
            println!("\nreport written to {out}");
        }
        None => print_analysis(&report),
    }

    if flags.get("fail-on-divergence").is_some() && report.divergent > 0 {
        eprintln!(
            "FAIL: {} of {} placements diverged under {}",
            report.divergent, report.decisions, report.replay_spec
        );
        std::process::exit(1);
    }
}

/// `msweb slo-check`: evaluate SLO burn-rate rules against a decision
/// log. The per-window signals are re-derived from the log alone, so
/// the verdict is byte-deterministic for a fixed log and rule set;
/// exits 1 when any rule fired.
fn cmd_slo_check(flags: &Flags) {
    let path = flags.required("log");
    let rules = load_slo_rules(flags.required("rules"));
    let log = match TraceLog::read(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot read decision log {path}: {e}");
            std::process::exit(1);
        }
    };
    let report = match check_log(&log, &rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot slo-check {path}: {e}");
            std::process::exit(1);
        }
    };
    if flags.get("json").is_some() {
        println!("{}", report.to_value().to_json_pretty());
    } else {
        print!("{}", report.render());
    }
    if report.breached() {
        std::process::exit(1);
    }
}

fn print_analysis(r: &AnalysisReport) {
    println!(
        "{} log, run {}/{}: policy {} on p={} (m={}, seed {})",
        r.substrate,
        r.run + 1,
        r.runs,
        r.policy,
        r.p,
        r.m,
        r.seed
    );
    println!("  recorded composition  {}", r.baseline_spec);
    if r.replay_spec != r.baseline_spec {
        println!("  replayed composition  {}", r.replay_spec);
    }
    println!(
        "  decisions {:>8}   divergent {:>6}  ({:.2}%)",
        r.decisions,
        r.divergent,
        r.divergence_rate * 100.0
    );
    match &r.first_disagreement {
        Some(d) => println!(
            "  first disagreement at decision {} (request {}): {} stage",
            d.seq,
            d.req,
            d.stage.as_str()
        ),
        None => println!("  replay is a fixed point of the log (no disagreement at any stage)"),
    }
    if !r.stage_attribution.is_empty() {
        let parts: Vec<String> = r
            .stage_attribution
            .iter()
            .map(|(stage, n)| format!("{stage} {n}"))
            .collect();
        println!("  divergence by stage   {}", parts.join(", "));
    }
    println!(
        "  completions {:>6}   drops recorded {:>4}  replayed {:>4}  rescued {:>4}",
        r.completions, r.drops_recorded, r.drops_replayed, r.rescued
    );
    if r.restarts_recorded > 0 {
        println!("  failure restarts      {}", r.restarts_recorded);
    }
    if r.recorded_stretch > 0.0 {
        println!("  recorded stretch      {:>8.3}", r.recorded_stretch);
    }
    println!(
        "  model stretch         {:>8.3} -> {:>8.3}  (delta {:+.3})",
        r.model_stretch_factual, r.model_stretch_counterfactual, r.model_stretch_delta
    );
    println!(
        "  node-busy CV          {:>8.3} -> {:>8.3}  (delta {:+.3})",
        r.node_busy_cv_factual, r.node_busy_cv_counterfactual, r.node_busy_cv_delta
    );
    for row in &r.divergences {
        let cf = match row.counterfactual {
            Some(n) => format!("{n}"),
            None => "drop".to_string(),
        };
        println!(
            "    seq {:>6} req {:>6}: node {} -> {}  ({} stage)",
            row.seq,
            row.req,
            row.factual,
            cf,
            row.stage.as_str()
        );
    }
    if r.divergences_truncated {
        println!("    ... divergence list truncated");
    }
    if r.parse_warning_count > 0 {
        println!("  parse warnings        {}", r.parse_warning_count);
        for w in &r.parse_warnings {
            println!("    {w}");
        }
        if (r.parse_warnings.len() as u64) < r.parse_warning_count {
            println!("    ... warning list truncated");
        }
    }
    if r.skipped_unknown_events > 0 {
        println!("  unknown events        {}", r.skipped_unknown_events);
    }
}

fn cmd_import(flags: &Flags) {
    let path = flags.required("log");
    let lambda = flags.num("lambda", 0.0);
    let p = flags.usize("p", 16);
    let n = flags.usize("requests", usize::MAX);

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let records = match clf::parse_clf(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    let kind = clf::guess_cgi_kind(&records);
    let demand = DemandModel::simulation(40.0);
    let mut trace = clf::records_to_trace("imported", &records, &demand, kind, 7).truncated(n);
    if lambda > 0.0 {
        trace = trace.scaled_to_rate(lambda);
    }
    let s = trace.summary();
    println!(
        "imported {} requests: {:.1}% CGI, replay rate {:.1}/s, inferred CGI kind {kind:?}\n",
        trace.len(),
        s.cgi_pct,
        trace.mean_rate()
    );
    let a = s.arrival_ratio_a.clamp(0.01, 10.0);
    let m = plan_masters(p, trace.mean_rate(), a, 1.0 / 40.0, 1200.0);
    for policy in [
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::Switch,
    ] {
        let cfg = ClusterConfig::simulation(p, policy).with_masters(m);
        let r = simulate(cfg, &trace, RunOptions::new()).summary;
        println!("{:<9} stretch {:>8.3}", policy.label(), r.stretch);
    }
}

fn cmd_traces() {
    println!(
        "{:<6} {:>5} {:>14} {:>7} {:>10} {:>10} {:>10}  CGI replay model",
        "trace", "year", "requests", "%CGI", "interval", "HTML B", "CGI B"
    );
    for t in all_traces() {
        println!(
            "{:<6} {:>5} {:>14} {:>7.1} {:>9.3}s {:>10} {:>10}  {:?}",
            t.name,
            t.year,
            t.paper_requests,
            t.cgi_pct,
            t.mean_interval_s,
            t.mean_html_bytes,
            t.mean_cgi_bytes,
            t.cgi_kind
        );
    }
}

fn cmd_live(flags: &Flags) {
    let rate = flags.num("rate", 40.0);
    let n = flags.usize("requests", 300);
    let scale = flags.num("scale", 0.2);

    let trace = ucb()
        .generate(n, &DemandModel::sun_cluster(40.0), 11)
        .scaled_to_rate(rate);
    println!(
        "live cluster: 6 nodes, {n} requests at {rate}/s, time scale {scale} \
         (expect ~{:.0}s wall)\n",
        n as f64 / rate * scale
    );
    let log = flags.get("trace-decisions");
    let tele_json = flags.get("telemetry");
    let metrics_out = flags.get("metrics-out");
    let series_path = flags.get("telemetry-series");
    let mut slo_rules = flags.get("slo-rules").map(load_slo_rules);
    let top = flags.get("top").is_some();
    // Bind the scrape endpoint before any run starts, so address errors
    // surface immediately and scrapers can connect from the first
    // moment (the body fills in once the instrumented run begins).
    let mut metrics_server = flags.get("serve-metrics").map(|addr| {
        let server = MetricsServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("cannot bind --serve-metrics address {addr}: {e}");
            std::process::exit(1);
        });
        println!("serving live metrics at http://{}/metrics", server.addr());
        server
    });
    let mut first = true;
    for (policy, m) in [(PolicyKind::Flat, 1), (PolicyKind::MasterSlave, 3)] {
        let mut cfg = LiveConfig::sun_cluster(policy, m);
        cfg.time_scale = scale;
        // Telemetry (and the --top table, series, SLO rules and the
        // scrape endpoint) instrument the master/slave run — the
        // paper's policy and the run of interest.
        let instrument = (tele_json.is_some()
            || metrics_out.is_some()
            || top
            || series_path.is_some()
            || slo_rules.is_some()
            || metrics_server.is_some())
            && policy == PolicyKind::MasterSlave;
        let s = if instrument || log.is_some() {
            // The live path and the simulator share one scheduler
            // type, so tracing works identically: build the run's
            // scheduler, install the sink, hand it to the replay.
            let mut scheduler = live_scheduler(&cfg, &trace);
            scheduler.set_observer(log.map(|path| {
                if first {
                    decision_sink(path)
                } else {
                    decision_sink_append(path)
                }
            }));
            if instrument {
                let mut opts = LiveRunOptions::new()
                    .telemetry(tele_json.is_some() || metrics_out.is_some() || top)
                    .top(top);
                if let Some(path) = series_path {
                    opts = opts.series(series_sink(path));
                }
                if let Some(rules) = slo_rules.take() {
                    opts = opts.slo(SloEngine::new(rules));
                }
                if let Some(server) = metrics_server.take() {
                    opts = opts.metrics(server);
                }
                let outcome = emulate_with(&cfg, &trace, scheduler, opts);
                if let Some(snap) = &outcome.telemetry {
                    write_telemetry(snap, tele_json, metrics_out);
                }
                if let Some(engine) = &outcome.slo {
                    println!("slo alerts fired: {}", engine.alerts_fired());
                }
                if let Some(path) = series_path {
                    println!("telemetry series written to {path}");
                }
                outcome.summary
            } else {
                emulate_with(&cfg, &trace, scheduler, LiveRunOptions::new()).summary
            }
        } else {
            emulate(&cfg, &trace, LiveRunOptions::new()).summary
        };
        first = false;
        println!("{:<9} live stretch {:>8.3}", policy.label(), s.stretch);
    }
    if let Some(path) = log {
        println!("\ndecision log written to {path}");
    }
}

/// Process-wide peak RSS (`VmHWM`) in bytes, read from
/// `/proc/self/status`; 0 when unavailable (non-Linux hosts). The
/// high-water mark is monotone over the process lifetime, so a final
/// reading bounds every cell that ran before it.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

#[derive(serde::Serialize)]
struct ScaleCell {
    p: usize,
    n: usize,
    lambda: f64,
    spec: String,
    wall_s: f64,
    /// Process peak RSS after this cell (monotone across cells).
    peak_rss_bytes: u64,
    throughput_req_per_s: f64,
    completed: u64,
    dropped: u64,
    stretch: f64,
}

#[derive(serde::Serialize)]
struct ScaleParity {
    p: usize,
    n: usize,
    byte_identical: bool,
}

/// The telemetry-neutrality gate: the largest cell re-run with the
/// probe and a streaming series recorder attached must not move peak
/// RSS by more than a fixed margin — the probe's window ring and the
/// recorder's delta baseline are O(1) in run length, so any O(windows)
/// or O(requests) growth shows up here.
#[derive(serde::Serialize)]
struct ScaleTelemetryCheck {
    p: usize,
    n: usize,
    wall_s: f64,
    rss_before_bytes: u64,
    rss_after_bytes: u64,
    budget_max_delta_bytes: u64,
    ok: bool,
}

#[derive(serde::Serialize)]
struct ScaleReport {
    trace: String,
    seed: u64,
    lambda_per_p: f64,
    tick_workers: usize,
    budget_max_rss_bytes: u64,
    cells: Vec<ScaleCell>,
    parity: Vec<ScaleParity>,
    telemetry: ScaleTelemetryCheck,
    budget_ok: bool,
}

/// Parse a comma-separated size list with optional `k`/`M` suffixes
/// (`"1k,4k,10k"` → `[1000, 4000, 10000]`).
fn parse_size_list(s: &str, flag: &str) -> Vec<usize> {
    s.split(',')
        .map(|tok| {
            let t = tok.trim();
            let (digits, mult) = match t.chars().last() {
                Some('k') | Some('K') => (&t[..t.len() - 1], 1_000usize),
                Some('m') | Some('M') => (&t[..t.len() - 1], 1_000_000usize),
                _ => (t, 1),
            };
            digits
                .parse::<usize>()
                .ok()
                .map(|v| v * mult)
                .unwrap_or_else(|| {
                    eprintln!("--{flag} expects sizes like 1000 or 10k,1M, got '{t}'");
                    std::process::exit(2);
                })
        })
        .collect()
}

fn cmd_scale(flags: &Flags) {
    const GIB: u64 = 1 << 30;
    let test_mode = flags.get("test").is_some();
    let spec = trace_by_name(flags.get("trace").unwrap_or("ucb"));
    let seed = flags.u64("seed", 42);
    let per_p = flags.num("lambda-per-p", 31.25);
    let tick_workers = flags.usize("tick-workers", 0);
    let out = flags.get("out").unwrap_or("BENCH_scale.json");
    let default_p = if test_mode { "1000" } else { "1000,4000,10000" };
    let default_n = if test_mode {
        "100000"
    } else {
        "1000000,10000000"
    };
    let p_list = parse_size_list(flags.get("p").unwrap_or(default_p), "p");
    let n_list = parse_size_list(flags.get("n").unwrap_or(default_n), "n");
    let demand = DemandModel::simulation(40.0);
    let inv_r = 40.0;
    let registry = SchedulerRegistry::builtin();
    let stage_spec = StageSpec::for_policy(PolicyKind::MasterSlave);

    // Parity gate first (small, so it never disturbs the RSS story):
    // the streamed run must be byte-identical to the materialized one.
    let mut parity = Vec::new();
    if flags.get("skip-parity").is_none() {
        for p in [32usize, 128] {
            let n = 20_000;
            let lambda = per_p * p as f64;
            let trace = spec.generate(n, &demand, seed).scaled_to_rate(lambda);
            let m = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / inv_r, 1200.0);
            let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
                .with_masters(m)
                .with_seed(seed);
            let materialized = simulate(cfg.clone(), &trace, RunOptions::new()).summary;
            let stats = WorkloadStats::from_trace(&trace);
            let streamed = simulate_source(cfg, trace.source(), stats, RunOptions::new()).summary;
            let byte_identical =
                serde::to_json_string(&materialized) == serde::to_json_string(&streamed);
            println!(
                "parity p={p:<4} n={n}: streamed {} materialized",
                if byte_identical { "==" } else { "!=" }
            );
            parity.push(ScaleParity {
                p,
                n,
                byte_identical,
            });
        }
    }

    // Scale cells, smallest first so each cell's RSS reading is
    // dominated by itself or a larger predecessor.
    let mut cells = Vec::new();
    for &n in &n_list {
        for &p in &p_list {
            let lambda = per_p * p as f64;
            // Measure the generator's natural arrival rate (and the
            // workload stats) from a bounded probe prefix — the arrival
            // process is stationary, so a 50k sample pins the scaling
            // factor without materializing the full workload.
            let probe = spec.generate(n.min(50_000), &demand, seed);
            let t0 = probe
                .requests
                .first()
                .map(|r| r.arrival)
                .unwrap_or(SimTime::ZERO);
            let scaling = RateScaling::to_rate(probe.mean_rate(), t0, lambda);
            let stats = WorkloadStats::from_trace(&probe);
            let m = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / inv_r, 1200.0);
            let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
                .with_masters(m)
                .with_seed(seed);
            let scheduler = registry
                .compose(&cfg, &stage_spec, stats.a0, stats.r0)
                .unwrap_or_else(|e| {
                    eprintln!("compose failed: {e}");
                    std::process::exit(1);
                });
            let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
                .with_priors(stats.a0, stats.r0)
                .with_mean_demands(stats.static_mean, stats.dynamic_mean)
                .with_spec_label(stage_spec.render())
                .with_tick_workers(tick_workers);
            let source = ScaledSource::new(spec.stream(n, &demand, seed), scaling);
            let started = std::time::Instant::now();
            let s = sim.run_source(source);
            let wall_s = started.elapsed().as_secs_f64();
            let rss = peak_rss_bytes();
            println!(
                "p={p:<6} n={n:<9} lambda={lambda:<9.0} wall {wall_s:>8.2}s  \
                 {:>9.0} req/s  peak RSS {:>7.1} MiB  stretch {:.3}",
                n as f64 / wall_s,
                rss as f64 / (1024.0 * 1024.0),
                s.stretch
            );
            cells.push(ScaleCell {
                p,
                n,
                lambda,
                spec: stage_spec.render(),
                wall_s,
                peak_rss_bytes: rss,
                throughput_req_per_s: n as f64 / wall_s,
                completed: s.completed,
                dropped: s.dropped,
                stretch: s.stretch,
            });
        }
    }

    // Telemetry-neutrality gate: repeat the largest cell with the
    // window probe and a streaming series recorder attached (records
    // drained to a sink). Both are O(1) in run length — the probe keeps
    // a bounded window ring, the recorder only its delta baseline — so
    // the process high-water mark must not move by more than a fixed
    // margin relative to the identical uninstrumented cell that just
    // set it.
    const TELEMETRY_DELTA_BUDGET: u64 = 128 * 1024 * 1024;
    let telemetry = {
        let p = p_list.iter().copied().max().unwrap_or(32);
        let n = n_list.iter().copied().max().unwrap_or(20_000);
        let lambda = per_p * p as f64;
        let probe = spec.generate(n.min(50_000), &demand, seed);
        let t0 = probe
            .requests
            .first()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO);
        let scaling = RateScaling::to_rate(probe.mean_rate(), t0, lambda);
        let stats = WorkloadStats::from_trace(&probe);
        let m = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / inv_r, 1200.0);
        let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
            .with_masters(m)
            .with_seed(seed);
        let scheduler = registry
            .compose(&cfg, &stage_spec, stats.a0, stats.r0)
            .unwrap_or_else(|e| {
                eprintln!("compose failed: {e}");
                std::process::exit(1);
            });
        let rss_before = peak_rss_bytes();
        let recorder = SeriesRecorder::to_writer(Box::new(std::io::sink()));
        let mut sim = ClusterSim::with_scheduler(cfg, scheduler)
            .with_priors(stats.a0, stats.r0)
            .with_mean_demands(stats.static_mean, stats.dynamic_mean)
            .with_spec_label(stage_spec.render())
            .with_tick_workers(tick_workers)
            .with_series(recorder);
        let source = ScaledSource::new(spec.stream(n, &demand, seed), scaling);
        let started = std::time::Instant::now();
        let _ = sim.run_source(source);
        let wall_s = started.elapsed().as_secs_f64();
        let rss_after = peak_rss_bytes();
        let delta = rss_after.saturating_sub(rss_before);
        let ok = rss_after == 0 || delta <= TELEMETRY_DELTA_BUDGET;
        println!(
            "telemetry p={p:<6} n={n:<9} wall {wall_s:>8.2}s  RSS delta {:>7.1} MiB  ({})",
            delta as f64 / (1024.0 * 1024.0),
            if ok { "neutral" } else { "OVER BUDGET" }
        );
        ScaleTelemetryCheck {
            p,
            n,
            wall_s,
            rss_before_bytes: rss_before,
            rss_after_bytes: rss_after,
            budget_max_delta_bytes: TELEMETRY_DELTA_BUDGET,
            ok,
        }
    };

    let final_rss = peak_rss_bytes();
    let rss_ok = final_rss <= GIB || final_rss == 0;
    let parity_ok = parity.iter().all(|p| p.byte_identical);
    let telemetry_ok = telemetry.ok;
    let report = ScaleReport {
        trace: spec.name.to_string(),
        seed,
        lambda_per_p: per_p,
        tick_workers,
        budget_max_rss_bytes: GIB,
        cells,
        parity,
        telemetry,
        budget_ok: rss_ok && parity_ok && telemetry_ok,
    };
    if let Err(e) = std::fs::write(out, serde::to_json_string_pretty(&report) + "\n") {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\nscale report written to {out}");
    if !rss_ok {
        eprintln!(
            "BUDGET VIOLATION: peak RSS {:.1} MiB exceeds the 1 GiB scale budget",
            final_rss as f64 / (1024.0 * 1024.0)
        );
    }
    if !parity_ok {
        eprintln!("BUDGET VIOLATION: streamed summary diverged from materialized replay");
    }
    if !telemetry_ok {
        eprintln!(
            "BUDGET VIOLATION: telemetry instrumentation moved peak RSS by more \
             than {} MiB",
            TELEMETRY_DELTA_BUDGET / (1024 * 1024)
        );
    }
    if !(rss_ok && parity_ok && telemetry_ok) {
        std::process::exit(1);
    }
}
