//! Offline stand-in for `serde`, scoped to what this workspace needs.
//!
//! The build environment has no crates.io access, so the real `serde` is
//! unavailable. This crate keeps the workspace's `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` annotations compiling by providing a small
//! value-tree data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`] tree;
//! * [`Value`] — JSON-shaped document (`null`, bool, numbers, string,
//!   array, object) with an exact [`Value::to_json`] renderer;
//! * [`to_json_string`] — the one-call convenience the experiment
//!   reports use for `--json` output;
//! * [`Deserialize`] — a marker trait only (nothing in the workspace
//!   reads serialised data back yet).
//!
//! The derive macros live in the sibling `serde_derive` crate and follow
//! serde's externally-tagged conventions: structs become objects, unit
//! enum variants become strings, data-carrying variants become
//! single-key objects, newtype structs are transparent.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (kept exact; not routed through f64).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point or exponent so the
                    // number round-trips as a float.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Marker for types whose serialised form could be read back. The
/// workspace only writes reports today, so no decoding machinery exists;
/// the derive generates an empty impl to keep annotations honest.
pub trait Deserialize: Sized {}

/// Serialise any [`Serialize`] type to compact JSON.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json()
}

/// Serialise any [`Serialize`] type to pretty-printed JSON.
pub fn to_json_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json_pretty()
}

// ------------------------------------------------------------ primitives

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ------------------------------------------------------------ composites

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(42u64.to_value().to_json(), "42");
        assert_eq!((-3i32).to_value().to_json(), "-3");
        assert_eq!(true.to_value().to_json(), "true");
        assert_eq!(1.5f64.to_value().to_json(), "1.5");
        assert_eq!(f64::NAN.to_value().to_json(), "null");
        assert_eq!("hi".to_value().to_json(), "\"hi\"");
    }

    #[test]
    fn string_escaping() {
        assert_eq!("a\"b\\c\nd".to_value().to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn composites_render() {
        let v = vec![Some(1u32), None, Some(3)];
        assert_eq!(to_json_string(&v), "[1,null,3]");
        let t = (1u8, "x", 2.5f64);
        assert_eq!(to_json_string(&t), "[1,\"x\",2.5]");
    }

    #[test]
    fn object_ordering_is_insertion() {
        let obj = Value::Object(vec![
            ("b".into(), Value::UInt(1)),
            ("a".into(), Value::UInt(2)),
        ]);
        assert_eq!(obj.to_json(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn float_roundtrip_notation() {
        // Whole floats keep a ".0" so they parse back as floats.
        assert_eq!(2.0f64.to_value().to_json(), "2.0");
    }
}
