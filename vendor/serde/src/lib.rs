//! Offline stand-in for `serde`, scoped to what this workspace needs.
//!
//! The build environment has no crates.io access, so the real `serde` is
//! unavailable. This crate keeps the workspace's `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` annotations compiling by providing a small
//! value-tree data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`] tree;
//! * [`Value`] — JSON-shaped document (`null`, bool, numbers, string,
//!   array, object) with an exact [`Value::to_json`] renderer;
//! * [`to_json_string`] — the one-call convenience the experiment
//!   reports use for `--json` output;
//! * [`Deserialize`] — a marker trait only (nothing in the workspace
//!   reads serialised data back yet).
//!
//! The derive macros live in the sibling `serde_derive` crate and follow
//! serde's externally-tagged conventions: structs become objects, unit
//! enum variants become strings, data-carrying variants become
//! single-key objects, newtype structs are transparent.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (kept exact; not routed through f64).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Error produced by [`Value::parse`]: what went wrong and the byte
/// offset in the input where parsing stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > 128 {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b) => self.err(format!("unexpected byte 0x{b:02x}")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `]` in array");
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected string key in object");
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.err("expected `:` after object key");
            }
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(fields));
            }
            if !self.eat(b',') {
                return self.err("expected `,` or `}` in object");
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return self.err("lone leading surrogate");
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return self.err("invalid trailing surrogate");
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err(format!("invalid escape `\\{}`", esc as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar value.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width == 0 || start + width > self.bytes.len() {
                        return self.err("invalid UTF-8 in string");
                    }
                    self.pos = start + width;
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return self.err("truncated \\u escape");
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return self.err("invalid hex digit in \\u escape"),
            };
            self.pos += 1;
            code = (code << 4) | digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.eat(b'-');
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return self.err("invalid number"),
        };
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Value::Float(x)),
            Err(_) => self.err(format!("invalid number `{text}`")),
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

impl Value {
    /// Parse one JSON document from `input`, requiring the whole string
    /// (modulo surrounding whitespace) to be consumed.
    ///
    /// Integers without a fraction or exponent parse as [`Value::UInt`]
    /// (or [`Value::Int`] when negative) so they round-trip exactly;
    /// everything else numeric becomes [`Value::Float`]. Object key
    /// order is preserved as written.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return parser.err("trailing characters after JSON value");
        }
        Ok(value)
    }

    /// Borrow the fields of an object, or `None` for any other variant.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the items of an array, or `None` for any other variant.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string contents, or `None` for any other variant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, or `None` for any other variant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an unsigned (or non-negative
    /// signed) integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Look up a field of an object by key (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point or exponent so the
                    // number round-trips as a float.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Marker for types whose serialised form could be read back. The
/// workspace only writes reports today, so no decoding machinery exists;
/// the derive generates an empty impl to keep annotations honest.
pub trait Deserialize: Sized {}

/// Serialise any [`Serialize`] type to compact JSON.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json()
}

/// Serialise any [`Serialize`] type to pretty-printed JSON.
pub fn to_json_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json_pretty()
}

/// Parse one JSON document into a [`Value`] tree.
pub fn from_json_str(input: &str) -> Result<Value, ParseError> {
    Value::parse(input)
}

// ------------------------------------------------------------ primitives

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ------------------------------------------------------------ composites

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(42u64.to_value().to_json(), "42");
        assert_eq!((-3i32).to_value().to_json(), "-3");
        assert_eq!(true.to_value().to_json(), "true");
        assert_eq!(1.5f64.to_value().to_json(), "1.5");
        assert_eq!(f64::NAN.to_value().to_json(), "null");
        assert_eq!("hi".to_value().to_json(), "\"hi\"");
    }

    #[test]
    fn string_escaping() {
        assert_eq!("a\"b\\c\nd".to_value().to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn composites_render() {
        let v = vec![Some(1u32), None, Some(3)];
        assert_eq!(to_json_string(&v), "[1,null,3]");
        let t = (1u8, "x", 2.5f64);
        assert_eq!(to_json_string(&t), "[1,\"x\",2.5]");
    }

    #[test]
    fn object_ordering_is_insertion() {
        let obj = Value::Object(vec![
            ("b".into(), Value::UInt(1)),
            ("a".into(), Value::UInt(2)),
        ]);
        assert_eq!(obj.to_json(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn float_roundtrip_notation() {
        // Whole floats keep a ".0" so they parse back as floats.
        assert_eq!(2.0f64.to_value().to_json(), "2.0");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::UInt(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_containers_preserve_order() {
        let v = Value::parse(r#"{"b":[1,null,{"x":-2.0}],"a":""}"#).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "b".into(),
                    Value::Array(vec![
                        Value::UInt(1),
                        Value::Null,
                        Value::Object(vec![("x".into(), Value::Float(-2.0))]),
                    ]),
                ),
                ("a".into(), Value::Str(String::new())),
            ])
        );
    }

    #[test]
    fn parse_string_escapes() {
        let v = Value::parse(r#""a\"b\\c\ndAé😀""#).unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\ndAé😀".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} extra").is_err());
        assert!(Value::parse("nul").is_err());
        let err = Value::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn parse_roundtrips_render() {
        let original = Value::Object(vec![
            ("seq".into(), Value::UInt(3)),
            ("theta".into(), Value::Float(0.125)),
            ("who".into(), Value::Str("naïve \"quote\"".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Int(-1), Value::Bool(false)]),
            ),
            ("none".into(), Value::Null),
        ]);
        let parsed = Value::parse(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
        let pretty = Value::parse(&original.to_json_pretty()).unwrap();
        assert_eq!(pretty, original);
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"n":5,"f":1.5,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }
}
