//! Offline stand-in for `criterion`, scoped to what this workspace's
//! benches use: `Criterion::default().sample_size(n)`, `bench_function`,
//! `Bencher::iter`, [`black_box`], and both forms of [`criterion_group!`]
//! plus [`criterion_main!`].
//!
//! Timing is a straightforward wall-clock measurement (a warm-up batch
//! followed by `sample_size` timed batches, reporting the median), with
//! no statistical regression analysis, plotting, or persistence. Under
//! `cargo test` (criterion benches are compiled with `--test` too) each
//! benchmark runs a single iteration so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            // `cargo test` runs bench targets with `--test`.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark, timing `f`'s calls to `Bencher::iter`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("{id}: ok (test mode, 1 iteration)");
        } else {
            b.report(id);
        }
        self
    }

    /// Upstream finalisation hook; nothing to flush here.
    pub fn final_summary(&mut self) {}
}

/// Passed to the closure given to `bench_function`; runs the measured
/// routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measure `routine`, called repeatedly in timed batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }

        // Warm up and size batches so one sample takes roughly 10 ms:
        // long enough that Instant overhead is negligible.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(2);
        }

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id}: no samples (iter was never called)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        println!(
            "{id}: median {} (min {}, max {}, {} samples x {} iters)",
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi),
            per_iter.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group benchmark functions; supports both upstream forms:
/// `criterion_group!(benches, f, g)` and
/// `criterion_group!(name = benches; config = ...; targets = f, g)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        bench_example(&mut c);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
