//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`Strategy`] with `prop_map` / `prop_filter_map` adaptors,
//! * [`any`] for `u64`, `bool`, `Option<u8>` and friends,
//! * integer/float range strategies, tuple strategies (arity 2–6),
//! * `prop::collection::vec`.
//!
//! Unlike upstream proptest there is no shrinking and no persistence:
//! each test runs a fixed number of cases drawn from a deterministic
//! generator seeded by the test's name, so failures reproduce exactly
//! across runs. `*.proptest-regressions` files are ignored.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`; a plain message.
    pub type TestCaseError = String;

    /// Deterministic generator backing every strategy (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded construction; the same seed yields the same stream.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Derive the per-test root seed from the test's name: deterministic,
    /// but distinct properties see distinct streams (FNV-1a).
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

// ---------------------------------------------------------------- Strategy

/// A recipe for generating values of `Self::Value`.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; without shrinking, sampling directly is equivalent.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns `Some`, resampling
    /// otherwise. `whence` names the filter in the panic raised if the
    /// filter rejects essentially everything.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        // Matches upstream's "too many local rejects" bail-out.
        for _ in 0..65_536 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 65536 consecutive samples: {}",
            self.whence
        );
    }
}

// Integer ranges: uniform via modulo (bias is irrelevant for testing).
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// -------------------------------------------------------------- Arbitrary

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_sample(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning a broad magnitude range.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary_sample(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary_sample(rng))
        } else {
            None
        }
    }
}

/// Strategy over the whole domain of `T`; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// `any::<T>()` — the canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ------------------------------------------------------------- collection

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ----------------------------------------------------------------- macros

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instances of `body`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::new(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, message,
                    );
                }
            }
        }
    )*};
}

/// Assert within a property body; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Not routed through format!: stringify!($cond) may contain braces.
        if !$cond {
            return ::std::result::Result::Err(::std::string::String::from(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// The glob-import surface tests expect: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::sample(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
            let g = Strategy::sample(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(any::<bool>(), 1..30), &mut rng);
            assert!((1..30).contains(&v.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = (0u64..1000, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let draw = |seed| {
            let mut rng = TestRng::new(seed);
            (0..50).map(|_| strat.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro surface itself: config header, multiple args,
        /// trailing comma, doc comments.
        #[test]
        fn macro_roundtrip(
            x in 1u64..100,
            flag in any::<bool>(),
            opt in any::<Option<u8>>(),
        ) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(flag, flag);
            if let Some(v) = opt {
                prop_assert!(u64::from(v) <= 255);
            }
        }

        #[test]
        fn filter_map_applies(v in (1u64..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v))) {
            prop_assert_eq!(v % 2, 0);
        }
    }
}
