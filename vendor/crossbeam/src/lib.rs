//! Offline stand-in for `crossbeam`, scoped to what this workspace needs.
//!
//! The live cluster emulation (`msweb-emu`) uses crossbeam's MPSC
//! channels: every channel here has exactly one consumer (a node worker
//! or the dispatcher's completion drain), so `std::sync::mpsc` provides
//! the same semantics — multi-producer senders, `try_recv`,
//! `recv_timeout`, disconnection on drop. This module re-exports the std
//! types under crossbeam's names.
//!
//! Scoped threads (`crossbeam::thread::scope`) are not re-exported:
//! `std::thread::scope` has covered that use case since Rust 1.63 and is
//! what `msweb-simcore`'s worker pool uses.

/// MPSC channels with crossbeam's `channel` module layout.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (multi-producer: clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half (single consumer).
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop((tx, tx2));
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
