//! Offline stand-in for `rand`, scoped to what this workspace needs.
//!
//! `msweb-simcore` implements its own xoshiro256++ generator and only
//! uses `rand` for trait plumbing: implementing [`RngCore`] so generic
//! distribution code can drive a [`SimRng`]. This stub provides exactly
//! that trait surface with the upstream signatures.
//!
//! [`SimRng`]: https://docs.rs/msweb-simcore

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wrap a message.
    pub fn new<E: fmt::Display>(err: E) -> Self {
        Error {
            msg: err.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, matching `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the in-tree generators never fail.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
