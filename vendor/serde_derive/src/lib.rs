//! Derive macros for the offline `serde` stand-in.
//!
//! `syn`/`quote` are not available in this build environment, so the item
//! is parsed directly from the raw [`proc_macro::TokenStream`]. Supported
//! shapes — which cover every annotated type in the workspace:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialise transparently),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are not supported; hitting
//! either produces a compile error naming this crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the annotated item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = match &item {
                Item::NamedStruct { name, .. }
                | Item::TupleStruct { name, .. }
                | Item::UnitStruct { name }
                | Item::Enum { name, .. } => name,
            };
            format!("impl ::serde::Deserialize for {name} {{}}")
                .parse()
                .expect("generated impl parses")
        }
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!(
        "compile_error!({:?});",
        format!("serde_derive (offline stub): {msg}")
    )
    .parse()
    .expect("compile_error parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic type `{name}` is not supported"));
    }

    if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Item::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        }
    }
}

/// Advance past attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// `a: T, b: U, ...` — collect the field names, skipping the types.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        skip_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Count top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut saw_entry = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                // A trailing comma does not add a field.
                if idx + 1 < tokens.len() {
                    arity += 1;
                }
            }
            _ => saw_entry = true,
        }
    }
    if saw_entry {
        arity
    } else {
        0
    }
}

/// Consume the type tokens of one field: everything up to (and including)
/// the next top-level comma. Token trees keep nested `<...>`-free groups
/// balanced for us; `<` generics inside types carry no top-level commas
/// only when the type itself is not generic, so track angle depth too.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let variant = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Variant::Tuple(name, count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Variant::Struct(name, parse_named_fields(g.stream())?)
            }
            _ => Variant::Unit(name),
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("explicit discriminants are not supported".into());
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(variant);
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            impl_block(
                name,
                &format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity: 0 } | Item::UnitStruct { name } => {
            impl_block(name, "::serde::Value::Null")
        }
        Item::TupleStruct { name, arity: 1 } => {
            // Newtype structs are transparent, matching serde.
            impl_block(name, "::serde::Serialize::to_value(&self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_block(
                name,
                &format!("::serde::Value::Array(::std::vec![{}])", entries.join(", ")),
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| gen_variant_arm(name, v)).collect();
            impl_block(name, &format!("match self {{ {} }}", arms.join(" ")))
        }
    }
}

fn gen_variant_arm(enum_name: &str, variant: &Variant) -> String {
    match variant {
        Variant::Unit(v) => {
            format!("{enum_name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),")
        }
        Variant::Tuple(v, 1) => format!(
            "{enum_name}::{v}(f0) => ::serde::Value::Object(::std::vec![(\
             ::std::string::String::from({v:?}), ::serde::Serialize::to_value(f0))]),"
        ),
        Variant::Tuple(v, arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
            let values: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{v}({binders}) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from({v:?}), \
                 ::serde::Value::Array(::std::vec![{values}]))]),",
                binders = binders.join(", "),
                values = values.join(", "),
            )
        }
        Variant::Struct(v, fields) => {
            let binders = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {binders} }} => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from({v:?}), \
                 ::serde::Value::Object(::std::vec![{entries}]))]),",
                entries = entries.join(", "),
            )
        }
    }
}

fn impl_block(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
