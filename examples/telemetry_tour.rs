//! Correlate the reservation controller's telemetry with the stretch
//! series: a CGI-heavy burst drives the measured arrival ratio â up,
//! Theorem 1's beats-flat interval narrows, θ2* dips — and the stretch
//! of the windows under the dip spikes. The controller's time series
//! *predicts* the regression the summary metric only reports afterwards.
//!
//! ```sh
//! cargo run --release --example telemetry_tour
//! ```

use msweb::prelude::*;

fn main() {
    // Steady KSU background at moderate load, with a short CGI-heavy
    // UCB burst overlaid on the opening seconds (a burst trace of n
    // requests at rate λ spans n/λ seconds from t = 0).
    let base = ksu()
        .generate(18_000, &DemandModel::simulation(40.0), 42)
        .scaled_to_rate(2_000.0);
    let burst = ucb()
        .generate(3_600, &DemandModel::simulation(40.0), 7)
        .scaled_to_rate(1_800.0);
    let trace = base.merged(&burst);

    let m = plan_masters(32, 2_000.0, ksu().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    let cfg = ClusterConfig::simulation(32, PolicyKind::MasterSlave)
        .with_masters(m)
        .with_seed(42);
    // A declarative SLO on the same series: stretch budget 2.5 with a
    // fast one-window page and a slow four-window burn. `ALERT …` lines
    // land on stderr as the offending windows close, mid-run.
    let rules = SloRules::from_json(
        r#"{"rules": [{"name": "stretch", "signal": "stretch", "budget": 2.5,
            "burn": [{"windows": 1, "rate": 1.15}, {"windows": 4, "rate": 1.0}]}]}"#,
    )
    .expect("rules parse");
    let mut sim = policy_sim(cfg, &trace)
        .with_telemetry()
        .with_slo(SloEngine::new(rules));
    let summary = sim.run(&trace);
    let snap = sim.telemetry_snapshot().expect("telemetry enabled");

    println!(
        "merged trace: {} requests over {:.1}s, burst until ~{:.1}s; m={m}, p=32\n",
        trace.len(),
        trace.span().as_secs_f64(),
        burst.span().as_secs_f64()
    );
    println!(
        "{:>7} {:>8} {:>7} {:>7} {:>9} {:>10}",
        "t (s)", "θ2*", "â", "ρ", "clamps", "stretch"
    );
    // The stretch series skips completion-free windows; at this load
    // every window completes something, so the two align 1:1.
    let stretch = sim.stretch_series();
    for (w, s) in snap.windows.iter().zip(stretch) {
        println!(
            "{:>7.2} {:>8.3} {:>7.3} {:>7.3} {:>9} {:>10.3}",
            w.at_us as f64 / 1e6,
            w.theta2_star,
            w.a_hat,
            w.rho,
            w.clamp_events,
            s
        );
    }
    let alerts = sim.slo_engine().map(|e| e.alerts_fired()).unwrap_or(0);
    println!(
        "\noverall stretch {:.3} ({alerts} SLO alerts fired)",
        summary.stretch
    );
}
