//! Watch the reservation limit θ2* self-stabilise while the workload
//! shifts — the Section 4 adaptivity story.
//!
//! The run replays three phases on one cluster: a static-heavy phase, a
//! CGI-heavy phase, then near-saturation. After each monitor window the
//! controller re-estimates the arrival ratio â, the response ratio r̂ and
//! the utilisation ρ̂, and recomputes the admission cap. Expect the cap
//! to sit at zero under comfortable load (masters fully reserved for
//! statics) and to open up as the cluster approaches saturation (idle
//! master recruitment).
//!
//! ```sh
//! cargo run --release --example adaptive_reservation
//! ```

use msweb::cluster::reservation::admission_cap;
use msweb::prelude::*;

fn main() {
    // Directly exercise the controller the way the cluster does, with a
    // synthetic feedback model per phase.
    let (m, p) = (6, 32);
    let mut ctl = ReservationController::new(m, p, 0.3, 0.02, true);

    let phases = [
        ("static-heavy, light load", 0.10, 1.0 / 40.0, 0.30),
        ("CGI-heavy, moderate load", 0.80, 1.0 / 40.0, 0.55),
        ("CGI-heavy, near saturation", 0.80, 1.0 / 40.0, 0.88),
        ("overload", 0.80, 1.0 / 40.0, 1.10),
    ];

    println!("reservation controller: m={m}, p={p}");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "phase", "â", "r̂", "ρ̂", "cap θ*", "analytic cap"
    );
    for (name, a_true, r_true, rho_true) in phases {
        // Several monitor windows of consistent measurements per phase.
        for _ in 0..12 {
            let statics = 100;
            let dynamics = ((statics as f64) * a_true).round() as usize;
            for _ in 0..statics {
                ctl.note_arrival(false);
                ctl.note_response(false, SimDuration::from_secs_f64(1.0 / 1200.0 * 1.2));
            }
            for _ in 0..dynamics {
                ctl.note_arrival(true);
                ctl.note_response(
                    true,
                    SimDuration::from_secs_f64(1.0 / (1200.0 * r_true) * 1.2),
                );
            }
            ctl.update(rho_true);
        }
        let (a_hat, r_hat) = ctl.measured();
        println!(
            "{:<28} {:>8.3} {:>8.4} {:>8.3} {:>10.3} {:>12.3}",
            name,
            a_hat,
            r_hat,
            ctl.measured_rho(),
            ctl.theta2_star(),
            admission_cap(m, p, a_true, r_true, rho_true.min(1.5)),
        );
    }

    println!("\nthe cap stays closed under comfortable load and opens as ρ̂ → 1,");
    println!("recruiting master capacity exactly when slaves saturate (§4).");
}
