//! Capacity planner: use Theorem 1 to size the master level of a cluster
//! for a measured workload, and show the full analytic picture.
//!
//! ```sh
//! cargo run --release --example capacity_planner -- [lambda] [a] [inv_r] [p]
//! # e.g. a 2000 req/s site with 30% CGI that costs 60x a static fetch:
//! cargo run --release --example capacity_planner -- 2000 0.43 60 32
//! ```

use msweb::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let lambda: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000.0);
    let a: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let inv_r: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(40.0);
    let p: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(32);

    let w =
        Workload::from_ratios(lambda, a, 1200.0, 1.0 / inv_r).expect("invalid workload parameters");
    println!(
        "workload: λ={lambda}/s, a={a} (CGI share {:.1}%), 1/r={inv_r}, p={p}",
        100.0 * a / (1.0 + a)
    );
    println!(
        "offered load: {:.2} Erlangs ({:.1}% of cluster)\n",
        w.offered_load(),
        100.0 * w.offered_load() / p as f64
    );

    match FlatModel::evaluate(&w, p) {
        Ok(flat) => println!(
            "flat cluster:   stretch {:.3} at {:.1}% node utilisation",
            flat.stretch,
            flat.utilisation * 100.0
        ),
        Err(e) => println!("flat cluster:   UNSTABLE ({e})"),
    }

    match plan(&w, p, ThetaRule::Midpoint) {
        Ok(plan) => {
            println!(
                "M/S (Theorem 1): m = {} masters, θ = {:.3}",
                plan.m, plan.theta
            );
            println!(
                "                stretch {:.3}  ({:+.1}% vs flat)",
                plan.stretch_ms,
                plan.improvement_over_flat_pct()
            );
            println!(
                "                beats-flat interval θ ∈ [{:.3}, {:.3}]",
                plan.interval.theta1, plan.interval.theta2
            );
            println!(
                "                runtime reservation bound θ2* = {:.3}",
                reservation_bound(plan.m, p, a, 1.0 / inv_r)
            );
        }
        Err(e) => println!("M/S:            no feasible configuration ({e})"),
    }

    // Show the per-m landscape so the operator sees the sensitivity.
    println!("\nper-m analytic stretch (midpoint θ rule):");
    println!("{:>4} {:>8} {:>10} {:>10}", "m", "θ_m", "S_M", "vs flat");
    for m in 1..p {
        let Ok(model) = MsModel::new(w, p, m) else {
            continue;
        };
        let Ok(iv) = model.theta_interval() else {
            continue;
        };
        let theta = iv.theta_mid().clamp(0.0, 1.0);
        let Ok(pt) = model.evaluate(theta) else {
            continue;
        };
        let flat = FlatModel::evaluate(&w, p)
            .map(|f| f.stretch)
            .unwrap_or(f64::INFINITY);
        // Print every fourth m plus the extremes to keep the table short.
        if m == 1 || m == p - 1 || m % (p / 8).max(1) == 0 {
            println!(
                "{:>4} {:>8.3} {:>10.3} {:>9.1}%",
                m,
                theta,
                pt.stretch,
                (flat / pt.stretch - 1.0) * 100.0
            );
        }
    }
}
