//! Replay your own access log: import NCSA Common Log Format text,
//! classify static vs CGI lines, attach demands, and compare policies —
//! the paper's trace-driven methodology applied to any site's logs.
//!
//! ```sh
//! cargo run --release --example clf_import [-- /path/to/access.log]
//! ```
//!
//! Without an argument, a demonstration log is synthesised, written to a
//! temp file, and imported — exercising the same code path.

use msweb::prelude::*;
use msweb::workload::clf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let text = match args.get(1) {
        Some(path) => std::fs::read_to_string(path).expect("cannot read log file"),
        None => {
            // Synthesise a demo log: generate a KSU-like trace and render
            // it to CLF, as a stand-in for a real access.log.
            let demo = ksu()
                .generate(5_000, &DemandModel::simulation(40.0), 123)
                .scaled_to_rate(50.0);
            let text = clf::trace_to_clf(&demo);
            println!("(no log given; synthesised a 5000-line demo log)");
            text
        }
    };

    let records = clf::parse_clf(&text).expect("malformed log");
    let kind = clf::guess_cgi_kind(&records);
    println!(
        "parsed {} lines; mean interval {:.3}s; inferred CGI kind: {kind:?}",
        records.len(),
        clf::mean_interval_s(&records)
    );

    let demand = DemandModel::simulation(40.0);
    let trace = clf::records_to_trace("imported", &records, &demand, kind, 7).scaled_to_rate(800.0);
    let s = trace.summary();
    println!(
        "workload: {:.1}% CGI (a = {:.2}), replayed at {:.0} req/s\n",
        s.cgi_pct,
        s.arrival_ratio_a,
        trace.mean_rate()
    );

    let m = plan_masters(16, 800.0, s.arrival_ratio_a.max(0.01), 1.0 / 40.0, 1200.0);
    println!("Theorem 1 plans m = {m} masters of 16 nodes\n");
    for policy in [
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::Switch,
    ] {
        let cfg = ClusterConfig::simulation(16, policy).with_masters(m);
        let r = simulate(cfg, &trace, RunOptions::new()).summary;
        println!(
            "{:<8} stretch {:.3}  (static {:.3}, dynamic {:.3})",
            policy.label(),
            r.stretch,
            r.stretch_static,
            r.stretch_dynamic
        );
    }
}
