//! Failure injection: crash a slave mid-run and watch the master restart
//! its dynamic requests on other nodes (the paper's §2 fail-over
//! motivation for the master/slave architecture).
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use msweb::prelude::*;

fn main() {
    let spec = adl();
    let trace = spec
        .generate(8_000, &DemandModel::simulation(40.0), 17)
        .scaled_to_rate(300.0);
    let span = trace.span();
    println!(
        "workload: {} requests over {:.1}s of simulated time",
        trace.len(),
        span.as_secs_f64()
    );

    let cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(3);

    // Baseline: no failures.
    let baseline = simulate(cfg.clone(), &trace, RunOptions::new()).summary;

    // Crash slave 6 a third of the way in; it recovers near the end.
    let crash_at = SimTime::ZERO + span.mul_f64(0.33);
    let recover_at = SimTime::ZERO + span.mul_f64(0.9);
    let plan = FailurePlan::new(vec![FailureEvent {
        at: crash_at,
        node: 6,
        restart_dynamic: true,
        recover_at: Some(recover_at),
    }]);
    let mut sim = ClusterSim::new(cfg, spec.arrival_ratio_a(), 1.0 / 40.0).with_failures(plan);
    let failed = sim.run(&trace);

    println!();
    println!("{:<26} {:>10} {:>10}", "", "healthy", "with crash");
    println!(
        "{:<26} {:>10.3} {:>10.3}",
        "stretch", baseline.stretch, failed.stretch
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "completed", baseline.completed, failed.completed
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "restarted", baseline.restarted, failed.restarted
    );
    println!(
        "{:<26} {:>10} {:>10}",
        "dropped", baseline.dropped, failed.dropped
    );
    println!();
    println!(
        "slave 6 died at {:.1}s and recovered at {:.1}s; every dynamic request",
        crash_at.as_secs_f64(),
        recover_at.as_secs_f64()
    );
    println!("it held was restarted elsewhere after one monitor period of detection delay.");
}
