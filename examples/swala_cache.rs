//! Dynamic-content caching — the Swala extension (§6: "a simple
//! extension to consider caching in our scheme can be incorporated").
//!
//! Sweeps query-popularity skew and cache TTL on an ADL-like workload and
//! shows how a dynamic-content cache composes with M/S scheduling.
//!
//! ```sh
//! cargo run --release --example swala_cache
//! ```

use std::time::Instant;

use msweb::cluster::CacheConfig;
use msweb::prelude::*;

fn run(trace: &Trace, cache: Option<CacheConfig>, m: usize) -> (RunSummary, Option<f64>) {
    let mut cfg = ClusterConfig::simulation(16, PolicyKind::MasterSlave).with_masters(m);
    // Option on purpose: None is the uncached baseline.
    if let Some(cache) = cache {
        cfg = cfg.with_cache(cache);
    }
    let mut sim = msweb::cluster::ClusterSim::new(cfg, adl().arrival_ratio_a(), 1.0 / 40.0);
    let summary = sim.run(trace);
    let ratio = sim
        .cache_stats()
        .map(|(h, mi, _, _)| h as f64 / (h + mi).max(1) as f64);
    (summary, ratio)
}

fn main() {
    let t0 = Instant::now();
    let lambda = 500.0;
    let m = plan_masters(16, lambda, adl().arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    println!("ADL-like workload, 16 nodes, m = {m}, λ = {lambda}/s, r = 1/40\n");

    println!(
        "{:<34} {:>9} {:>10}",
        "configuration", "stretch", "hit ratio"
    );
    for (label, zipf_s, cache) in [
        ("no cache", 1.0, None),
        (
            "cache, uniform queries (s=0)",
            0.0,
            Some(CacheConfig::default_swala()),
        ),
        (
            "cache, mild skew (s=0.8)",
            0.8,
            Some(CacheConfig::default_swala()),
        ),
        (
            "cache, strong skew (s=1.2)",
            1.2,
            Some(CacheConfig::default_swala()),
        ),
    ] {
        let demand = DemandModel::simulation(40.0).with_query_popularity(2_000, zipf_s);
        let trace = adl().generate(12_000, &demand, 31).scaled_to_rate(lambda);
        let (s, ratio) = run(&trace, cache, m);
        println!(
            "{:<34} {:>9.3} {:>9}",
            label,
            s.stretch,
            ratio
                .map(|r| format!("{:.1}%", r * 100.0))
                .unwrap_or_else(|| "-".into())
        );
    }

    println!("\nTTL sweep (strong skew):");
    println!("{:<14} {:>9} {:>10}", "TTL", "stretch", "hit ratio");
    let demand = DemandModel::simulation(40.0).with_query_popularity(2_000, 1.2);
    let trace = adl().generate(12_000, &demand, 31).scaled_to_rate(lambda);
    for ttl_s in [1u64, 5, 30, 120, 600] {
        let cache = CacheConfig {
            ttl: SimDuration::from_secs(ttl_s),
            ..CacheConfig::default_swala()
        };
        let (s, ratio) = run(&trace, Some(cache), m);
        println!(
            "{:<14} {:>9.3} {:>9}",
            format!("{ttl_s} s"),
            s.stretch,
            ratio
                .map(|r| format!("{:.1}%", r * 100.0))
                .unwrap_or_default()
        );
    }
    println!(
        "\ncaching turns repeated CGI queries into static-scale fetches; the\n\
         hit ratio (and the win) grows with query skew and TTL. ({:.1}s wall)",
        t0.elapsed().as_secs_f64()
    );
}
