//! Replay each of the paper's traces under every scheduling policy and
//! print a Figure-4-style comparison table.
//!
//! ```sh
//! cargo run --release --example trace_replay [-- <requests> <p>]
//! ```

use msweb::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(15_000);
    let p: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);

    let policies = [
        PolicyKind::Flat,
        PolicyKind::MasterSlave,
        PolicyKind::MsNoSampling,
        PolicyKind::MsNoReservation,
        PolicyKind::MsAllMasters,
        PolicyKind::MsPrime,
        PolicyKind::Redirect,
        PolicyKind::Switch,
    ];

    println!("replaying {n} requests per trace on p={p} nodes\n");
    print!("{:<18}", "trace (λ, 1/r)");
    for pk in &policies {
        print!("{:>9}", pk.label());
    }
    println!();

    for (spec, lambda, inv_r) in [
        (ucb(), 31.25 * p as f64, 40.0),
        (ksu(), 15.6 * p as f64, 80.0),
        (adl(), 15.6 * p as f64, 40.0),
    ] {
        let trace = spec
            .generate(n, &DemandModel::simulation(inv_r), 7)
            .scaled_to_rate(lambda);
        let m = plan_masters(p, lambda, spec.arrival_ratio_a(), 1.0 / inv_r, 1200.0);
        print!(
            "{:<18}",
            format!("{} ({:.0}, {:.0})", spec.name, lambda, inv_r)
        );
        for pk in &policies {
            let cfg = ClusterConfig::simulation(p, *pk).with_masters(m);
            let s = simulate(cfg, &trace, RunOptions::new()).summary;
            print!("{:>9.3}", s.stretch);
        }
        println!("   (m={m})");
    }
    println!("\nsmaller stretch is better. M/S should beat Flat and its own");
    println!("ablations (ns/nr/1/'/Redirect) on every row. The Switch column is");
    println!("an *idealised* least-connections balancer with instantaneous");
    println!("in-path counts (join-shortest-queue) — stronger than any 1999");
    println!("switch and competitive with M/S on raw stretch; see EXPERIMENTS.md.");
}
