//! Quickstart: replay a CGI-heavy workload on an 8-node cluster and
//! compare the paper's master/slave policy against a flat cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use msweb::prelude::*;

fn main() {
    // 1. Build a workload: a UCB-like trace (11% CPU-intensive CGI) with
    //    a demand ratio 1/r = 40, replayed at 250 requests/second.
    let spec = ucb();
    let demand = DemandModel::simulation(40.0);
    let trace = spec.generate(10_000, &demand, 42).scaled_to_rate(250.0);
    println!(
        "workload: {} requests, {:.1}% CGI, {:.0} req/s",
        trace.len(),
        trace.summary().cgi_pct,
        trace.mean_rate()
    );

    // 2. Ask Theorem 1 how many of the 8 nodes should be masters.
    let m = plan_masters(8, 250.0, spec.arrival_ratio_a(), 1.0 / 40.0, 1200.0);
    println!("Theorem 1 plans {m} masters of 8 nodes");

    // 3. Replay under both architectures.
    let ms_cfg = ClusterConfig::simulation(8, PolicyKind::MasterSlave).with_masters(m);
    let ms = simulate(ms_cfg, &trace, RunOptions::new()).summary;

    let flat = simulate(
        ClusterConfig::simulation(8, PolicyKind::Flat),
        &trace,
        RunOptions::new(),
    )
    .summary;

    // 4. Report the paper's metric.
    println!();
    println!("            {:>10} {:>10}", "Flat", "M/S");
    println!("stretch     {:>10.3} {:>10.3}", flat.stretch, ms.stretch);
    println!(
        "  static    {:>10.3} {:>10.3}",
        flat.stretch_static, ms.stretch_static
    );
    println!(
        "  dynamic   {:>10.3} {:>10.3}",
        flat.stretch_dynamic, ms.stretch_dynamic
    );
    println!();
    println!(
        "M/S improves the mean stretch factor by {:.1}%",
        ms.improvement_over_pct(&flat)
    );
}
