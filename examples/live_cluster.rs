//! Run the live thread-backed cluster emulation (the Sun-prototype
//! substitute) and compare it against the simulator on the same workload
//! — a miniature of the paper's Table 3 validation.
//!
//! ```sh
//! cargo run --release --example live_cluster [-- <requests> <rate>]
//! ```

use msweb::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let rate: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(40.0);

    // The paper's prototype: 6 Ultra-1-class nodes (110 static req/s),
    // UCB trace with r = 1/40, 3 masters.
    let spec = ucb();
    let trace = spec
        .generate(n, &DemandModel::sun_cluster(40.0), 11)
        .scaled_to_rate(rate);
    println!(
        "live cluster: 6 nodes, {} requests at {:.0} req/s, time scale 0.1",
        trace.len(),
        rate
    );
    let cal = msweb::emu::calibrate();
    println!(
        "host timing: wait error {:?}, sleep overshoot {:?}\n",
        cal.wait_error, cal.sleep_overshoot
    );

    let mut results = Vec::new();
    for (policy, m) in [
        (PolicyKind::Flat, 1),
        (PolicyKind::MasterSlave, 3),
        (PolicyKind::MsNoReservation, 3),
    ] {
        // Live run (wall-clock).
        let mut live_cfg = LiveConfig::sun_cluster(policy, m);
        live_cfg.time_scale = 0.1;
        live_cfg.monitor_period = std::time::Duration::from_millis(100);
        let t0 = std::time::Instant::now();
        let live = emulate(&live_cfg, &trace, LiveRunOptions::new()).summary;

        // Simulated run of the same workload on 110-req/s nodes.
        let sim_cfg = ClusterConfig::simulation(6, policy)
            .with_masters(m)
            .with_mu_h(110.0);
        let sim = simulate(sim_cfg, &trace, RunOptions::new()).summary;

        println!(
            "{:<8} live stretch {:>7.3} | simulated {:>7.3}   ({:.1}s wall)",
            policy.label(),
            live.stretch,
            sim.stretch,
            t0.elapsed().as_secs_f64()
        );
        results.push((policy, live.stretch, sim.stretch));
    }

    // Improvement ratios, live vs simulated (the Table 3 comparison).
    let flat = results[0];
    println!();
    for &(policy, live, sim) in &results[1..] {
        println!(
            "M/S-family {} vs Flat: live {:+.1}% | simulated {:+.1}%",
            policy.label(),
            (flat.1 / live - 1.0) * 100.0,
            (flat.2 / sim - 1.0) * 100.0
        );
    }
}
