//! Compose a novel scheduling policy from the pipeline registry — no
//! changes to `msweb-cluster` required.
//!
//! Two compositions are built here:
//!
//! 1. a pure registry policy, `"least-connections/none/level-split/\
//!    min-rsrc/split-demand"` — an L4-switch front end driving the
//!    paper's two-level candidate sets;
//! 2. the same pipeline with a *custom scorer written in this example*:
//!    power-of-two-choices over the RSRC cost (Eq. 5), a classic
//!    randomized-load-balancing rule the paper never evaluated. (The
//!    registry now also ships this rule built in as `rsrc-p2:<k>` for
//!    any `k` — the hand-rolled version stays here as the registration
//!    walkthrough.)
//!
//! Both run through the ordinary [`ClusterSim`] driver and are compared
//! against the built-in M/S and Flat policies on the same trace.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use msweb::cluster::sched::{Scorer, StageCtx};
use msweb::prelude::*;

/// Power-of-two-choices over RSRC cost: draw two candidates uniformly
/// at random and keep the cheaper one. O(1) load inspection per
/// decision instead of a full scan, at a modest placement-quality cost —
/// the classic Azar et al. trade-off, expressed as one pipeline stage.
struct PowerOfTwoRsrc;

impl Scorer for PowerOfTwoRsrc {
    fn choose(
        &self,
        ctx: &mut StageCtx<'_>,
        candidates: &[usize],
        know: ReqKnowledge,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let a = candidates[ctx.rng.gen_index(candidates.len())];
        let b = candidates[ctx.rng.gen_index(candidates.len())];
        let cost = |n: usize| ctx.rsrc.cost(n, &ctx.loads[n], know.w);
        Some(if cost(b) < cost(a) { b } else { a })
    }

    fn score(&self, ctx: &StageCtx<'_>, node: usize, know: ReqKnowledge) -> f64 {
        ctx.rsrc.cost(node, &ctx.loads[node], know.w)
    }
}

fn main() {
    let (p, m, lambda, inv_r) = (16, 4, 700.0, 40.0);
    let trace = ucb()
        .generate(12_000, &DemandModel::simulation(inv_r), 17)
        .scaled_to_rate(lambda);
    let a0 = ucb().arrival_ratio_a();
    let r0 = 1.0 / inv_r;

    let config = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
        .with_masters(m)
        .with_seed(99);

    // A registry with one extra stage: our scorer, under its own name.
    let mut registry = SchedulerRegistry::builtin();
    registry.register_scorer("rsrc-p2c", |_| Box::new(PowerOfTwoRsrc));

    let run_spec = |spec: &str| -> RunSummary {
        let spec = StageSpec::parse(spec).expect("well-formed stage spec");
        let scheduler = match registry.compose(&config, &spec, a0, r0) {
            Ok(s) => s,
            Err(e) => panic!("compose failed: {e}"),
        };
        let mut sim = ClusterSim::with_scheduler(config.clone(), scheduler).with_mean_demands(
            SimDuration::from_secs_f64(1.0 / 1200.0),
            SimDuration::from_secs_f64(1.0 / 1200.0 / r0),
        );
        sim.run(&trace)
    };

    println!("UCB x 12k requests at {lambda}/s on p={p} (m={m}, 1/r={inv_r})\n");
    let switch_level = run_spec("least-connections/none/level-split/min-rsrc/split-demand");
    let p2c = run_spec("least-connections/none/level-split/rsrc-p2c/split-demand");
    let ms = simulate(config.clone(), &trace, RunOptions::new()).summary;
    let flat = simulate(
        ClusterConfig::simulation(p, PolicyKind::Flat).with_seed(99),
        &trace,
        RunOptions::new(),
    )
    .summary;

    println!("{:<44} stretch", "composition");
    for (name, s) in [
        ("built-in Flat (DNS rotation)", &flat),
        ("built-in M/S (reservation + full RSRC scan)", &ms),
        ("switch entry + level-split + full scan", &switch_level),
        ("switch entry + level-split + RSRC p2c", &p2c),
    ] {
        println!("{name:<44} {:>7.3}", s.stretch);
    }
    println!(
        "\npower-of-two placement quality vs the full scan: {:+.1}%",
        (p2c.stretch / switch_level.stretch - 1.0) * 100.0
    );
}
