//! Heterogeneous clusters — the paper's Section 6 extension.
//!
//! Plans a master/slave split for a cluster with mixed node speeds using
//! the analytic extension, then validates the plan by simulation with
//! per-node speed factors.
//!
//! ```sh
//! cargo run --release --example heterogeneous
//! ```

use msweb::prelude::*;

fn main() {
    // A mixed fleet: 8 old half-speed boxes and 8 modern double-speed ones.
    let mut speeds = vec![0.5; 8];
    speeds.extend(vec![2.0; 8]);
    let p = speeds.len();

    let lambda = 400.0;
    let spec = ksu();
    let a = spec.arrival_ratio_a();
    let inv_r = 40.0;
    let w = Workload::from_ratios(lambda, a, 1200.0, 1.0 / inv_r).unwrap();

    println!("fleet: 8 nodes @0.5x + 8 nodes @2.0x, λ={lambda}/s, a={a:.2}, 1/r={inv_r}");

    // Analytic planning: which nodes should be masters?
    let (cluster, theta, stretch) =
        HeteroCluster::plan_masters(&speeds, &w).expect("feasible configuration");
    println!(
        "analytic plan: masters = {:?} (slow boxes), θ = {:.3}, predicted stretch {:.3}",
        cluster.masters, theta, stretch
    );

    // Validate by simulation: slow-masters vs fast-masters.
    let trace = spec
        .generate(12_000, &DemandModel::simulation(inv_r), 3)
        .scaled_to_rate(lambda);

    let run_with = |master_speed_slow: bool| {
        // Node order in the simulator: masters first. Arrange speeds so
        // the master level gets slow or fast boxes.
        let mut s = speeds.clone();
        if master_speed_slow {
            s.sort_by(|a, b| a.partial_cmp(b).unwrap()); // slow first = masters
        } else {
            s.sort_by(|a, b| b.partial_cmp(a).unwrap()); // fast first = masters
        }
        let cfg = ClusterConfig::simulation(p, PolicyKind::MasterSlave)
            .with_masters(cluster.masters.len())
            .with_speeds(s);
        simulate(cfg, &trace, RunOptions::new()).summary
    };

    let slow_masters = run_with(true);
    let fast_masters = run_with(false);
    println!();
    println!(
        "simulated stretch, slow boxes as masters: {:.3}",
        slow_masters.stretch
    );
    println!(
        "simulated stretch, fast boxes as masters: {:.3}",
        fast_masters.stretch
    );
    println!();
    if slow_masters.stretch <= fast_masters.stretch {
        println!("=> the analytic intuition holds: static requests are cheap, so");
        println!("   slow boxes make fine masters while fast boxes crunch CGI.");
    } else {
        println!("=> on this draw the fast-master layout won — rerun with other");
        println!("   seeds/loads to see the analytic trend emerge.");
    }
}
