/root/repo/target/release/deps/failure_recovery-b57974bcd2eadee3.d: tests/failure_recovery.rs

/root/repo/target/release/deps/failure_recovery-b57974bcd2eadee3: tests/failure_recovery.rs

tests/failure_recovery.rs:
