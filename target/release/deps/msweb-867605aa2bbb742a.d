/root/repo/target/release/deps/msweb-867605aa2bbb742a.d: src/lib.rs

/root/repo/target/release/deps/libmsweb-867605aa2bbb742a.rlib: src/lib.rs

/root/repo/target/release/deps/libmsweb-867605aa2bbb742a.rmeta: src/lib.rs

src/lib.rs:
