/root/repo/target/release/deps/proptests-e8d792434d7941c8.d: crates/simcore/tests/proptests.rs

/root/repo/target/release/deps/proptests-e8d792434d7941c8: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
