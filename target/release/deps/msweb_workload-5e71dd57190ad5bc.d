/root/repo/target/release/deps/msweb_workload-5e71dd57190ad5bc.d: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libmsweb_workload-5e71dd57190ad5bc.rlib: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libmsweb_workload-5e71dd57190ad5bc.rmeta: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/cgi.rs:
crates/workload/src/clf.rs:
crates/workload/src/fileset.rs:
crates/workload/src/generators.rs:
crates/workload/src/request.rs:
crates/workload/src/trace.rs:
