/root/repo/target/release/deps/msweb_ossim-bd50da8edb608e87.d: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

/root/repo/target/release/deps/msweb_ossim-bd50da8edb608e87: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

crates/ossim/src/lib.rs:
crates/ossim/src/config.rs:
crates/ossim/src/disk.rs:
crates/ossim/src/memory.rs:
crates/ossim/src/mlfq.rs:
crates/ossim/src/node.rs:
crates/ossim/src/process.rs:
