/root/repo/target/release/deps/msweb_workload-65b977fdf9c16464.d: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/msweb_workload-65b977fdf9c16464: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/cgi.rs:
crates/workload/src/clf.rs:
crates/workload/src/fileset.rs:
crates/workload/src/generators.rs:
crates/workload/src/request.rs:
crates/workload/src/trace.rs:
