/root/repo/target/release/deps/msweb_bench-bc75a0555564e1b5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/msweb_bench-bc75a0555564e1b5: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
