/root/repo/target/release/deps/msweb_queueing-c1205e3a748c71a6.d: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

/root/repo/target/release/deps/libmsweb_queueing-c1205e3a748c71a6.rlib: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

/root/repo/target/release/deps/libmsweb_queueing-c1205e3a748c71a6.rmeta: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

crates/queueing/src/lib.rs:
crates/queueing/src/fig3.rs:
crates/queueing/src/flat.rs:
crates/queueing/src/hetero.rs:
crates/queueing/src/mmc.rs:
crates/queueing/src/ms.rs:
crates/queueing/src/msprime.rs:
crates/queueing/src/params.rs:
crates/queueing/src/theorem1.rs:
