/root/repo/target/release/deps/policy_ordering-50988e27e541d21e.d: tests/policy_ordering.rs

/root/repo/target/release/deps/policy_ordering-50988e27e541d21e: tests/policy_ordering.rs

tests/policy_ordering.rs:
