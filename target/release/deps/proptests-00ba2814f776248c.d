/root/repo/target/release/deps/proptests-00ba2814f776248c.d: crates/ossim/tests/proptests.rs

/root/repo/target/release/deps/proptests-00ba2814f776248c: crates/ossim/tests/proptests.rs

crates/ossim/tests/proptests.rs:
