/root/repo/target/release/deps/msweb-8b0723a0d04e8598.d: src/bin/msweb.rs

/root/repo/target/release/deps/msweb-8b0723a0d04e8598: src/bin/msweb.rs

src/bin/msweb.rs:
