/root/repo/target/release/deps/experiments-66c156889caf97cb.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-66c156889caf97cb: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
