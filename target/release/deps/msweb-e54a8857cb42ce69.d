/root/repo/target/release/deps/msweb-e54a8857cb42ce69.d: src/lib.rs

/root/repo/target/release/deps/msweb-e54a8857cb42ce69: src/lib.rs

src/lib.rs:
