/root/repo/target/release/deps/proptests-ae1fd8cf2d8a08b6.d: crates/workload/tests/proptests.rs

/root/repo/target/release/deps/proptests-ae1fd8cf2d8a08b6: crates/workload/tests/proptests.rs

crates/workload/tests/proptests.rs:
