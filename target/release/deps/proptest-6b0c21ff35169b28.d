/root/repo/target/release/deps/proptest-6b0c21ff35169b28.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6b0c21ff35169b28.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6b0c21ff35169b28.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
