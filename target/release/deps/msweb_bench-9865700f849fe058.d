/root/repo/target/release/deps/msweb_bench-9865700f849fe058.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmsweb_bench-9865700f849fe058.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmsweb_bench-9865700f849fe058.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
