/root/repo/target/release/deps/determinism-70d75c623dabae3d.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-70d75c623dabae3d: tests/determinism.rs

tests/determinism.rs:
