/root/repo/target/release/deps/live_emulation-3f52b62c1fb8e3eb.d: tests/live_emulation.rs

/root/repo/target/release/deps/live_emulation-3f52b62c1fb8e3eb: tests/live_emulation.rs

tests/live_emulation.rs:
