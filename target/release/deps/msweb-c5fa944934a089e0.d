/root/repo/target/release/deps/msweb-c5fa944934a089e0.d: src/bin/msweb.rs

/root/repo/target/release/deps/msweb-c5fa944934a089e0: src/bin/msweb.rs

src/bin/msweb.rs:
