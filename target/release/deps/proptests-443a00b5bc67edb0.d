/root/repo/target/release/deps/proptests-443a00b5bc67edb0.d: crates/cluster/tests/proptests.rs

/root/repo/target/release/deps/proptests-443a00b5bc67edb0: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
