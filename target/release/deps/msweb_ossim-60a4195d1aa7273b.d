/root/repo/target/release/deps/msweb_ossim-60a4195d1aa7273b.d: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

/root/repo/target/release/deps/libmsweb_ossim-60a4195d1aa7273b.rlib: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

/root/repo/target/release/deps/libmsweb_ossim-60a4195d1aa7273b.rmeta: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

crates/ossim/src/lib.rs:
crates/ossim/src/config.rs:
crates/ossim/src/disk.rs:
crates/ossim/src/memory.rs:
crates/ossim/src/mlfq.rs:
crates/ossim/src/node.rs:
crates/ossim/src/process.rs:
