/root/repo/target/release/deps/analytic_vs_simulation-cfca843f576ad3a5.d: tests/analytic_vs_simulation.rs

/root/repo/target/release/deps/analytic_vs_simulation-cfca843f576ad3a5: tests/analytic_vs_simulation.rs

tests/analytic_vs_simulation.rs:
