/root/repo/target/release/deps/experiments-9f1526e727dac202.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-9f1526e727dac202: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
