/root/repo/target/release/deps/msweb_emu-acfa371cef3926e6.d: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

/root/repo/target/release/deps/msweb_emu-acfa371cef3926e6: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

crates/emu/src/lib.rs:
crates/emu/src/cluster.rs:
crates/emu/src/job.rs:
crates/emu/src/node.rs:
crates/emu/src/timing.rs:
