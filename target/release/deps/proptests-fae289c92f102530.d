/root/repo/target/release/deps/proptests-fae289c92f102530.d: crates/queueing/tests/proptests.rs

/root/repo/target/release/deps/proptests-fae289c92f102530: crates/queueing/tests/proptests.rs

crates/queueing/tests/proptests.rs:
