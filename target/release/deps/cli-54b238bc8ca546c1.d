/root/repo/target/release/deps/cli-54b238bc8ca546c1.d: tests/cli.rs

/root/repo/target/release/deps/cli-54b238bc8ca546c1: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_msweb=/root/repo/target/release/msweb
