/root/repo/target/release/deps/crossbeam-874474ff5bb1fff3.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-874474ff5bb1fff3.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-874474ff5bb1fff3.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
