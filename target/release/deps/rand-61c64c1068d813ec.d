/root/repo/target/release/deps/rand-61c64c1068d813ec.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-61c64c1068d813ec.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-61c64c1068d813ec.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
