/root/repo/target/release/deps/pooling_and_bursts-f27a8c3eb3918840.d: tests/pooling_and_bursts.rs

/root/repo/target/release/deps/pooling_and_bursts-f27a8c3eb3918840: tests/pooling_and_bursts.rs

tests/pooling_and_bursts.rs:
