/root/repo/target/release/deps/criterion-496364e03ae7664b.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-496364e03ae7664b.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-496364e03ae7664b.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
