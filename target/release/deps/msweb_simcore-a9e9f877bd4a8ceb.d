/root/repo/target/release/deps/msweb_simcore-a9e9f877bd4a8ceb.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libmsweb_simcore-a9e9f877bd4a8ceb.rlib: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/libmsweb_simcore-a9e9f877bd4a8ceb.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
