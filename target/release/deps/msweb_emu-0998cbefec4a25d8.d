/root/repo/target/release/deps/msweb_emu-0998cbefec4a25d8.d: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

/root/repo/target/release/deps/libmsweb_emu-0998cbefec4a25d8.rlib: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

/root/repo/target/release/deps/libmsweb_emu-0998cbefec4a25d8.rmeta: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

crates/emu/src/lib.rs:
crates/emu/src/cluster.rs:
crates/emu/src/job.rs:
crates/emu/src/node.rs:
crates/emu/src/timing.rs:
