/root/repo/target/release/deps/reservation_behavior-0d29859ffa0178d1.d: tests/reservation_behavior.rs

/root/repo/target/release/deps/reservation_behavior-0d29859ffa0178d1: tests/reservation_behavior.rs

tests/reservation_behavior.rs:
