/root/repo/target/release/deps/msweb_simcore-ce482223ce29e118.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/msweb_simcore-ce482223ce29e118: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
