/root/repo/target/release/examples/heterogeneous-566517c5001430d6.d: examples/heterogeneous.rs

/root/repo/target/release/examples/heterogeneous-566517c5001430d6: examples/heterogeneous.rs

examples/heterogeneous.rs:
