/root/repo/target/release/examples/thetam-e8e8ec052fad8441.d: crates/queueing/examples/thetam.rs

/root/repo/target/release/examples/thetam-e8e8ec052fad8441: crates/queueing/examples/thetam.rs

crates/queueing/examples/thetam.rs:
