/root/repo/target/release/examples/adaptive_reservation-1b90e697d8a4781b.d: examples/adaptive_reservation.rs

/root/repo/target/release/examples/adaptive_reservation-1b90e697d8a4781b: examples/adaptive_reservation.rs

examples/adaptive_reservation.rs:
