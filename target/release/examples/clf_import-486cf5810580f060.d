/root/repo/target/release/examples/clf_import-486cf5810580f060.d: examples/clf_import.rs

/root/repo/target/release/examples/clf_import-486cf5810580f060: examples/clf_import.rs

examples/clf_import.rs:
