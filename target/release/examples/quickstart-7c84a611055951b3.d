/root/repo/target/release/examples/quickstart-7c84a611055951b3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7c84a611055951b3: examples/quickstart.rs

examples/quickstart.rs:
