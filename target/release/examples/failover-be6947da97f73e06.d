/root/repo/target/release/examples/failover-be6947da97f73e06.d: examples/failover.rs

/root/repo/target/release/examples/failover-be6947da97f73e06: examples/failover.rs

examples/failover.rs:
