/root/repo/target/release/examples/capacity_planner-f37eb2222d46def7.d: examples/capacity_planner.rs

/root/repo/target/release/examples/capacity_planner-f37eb2222d46def7: examples/capacity_planner.rs

examples/capacity_planner.rs:
