/root/repo/target/release/examples/trace_replay-bef7e356f3d03d49.d: examples/trace_replay.rs

/root/repo/target/release/examples/trace_replay-bef7e356f3d03d49: examples/trace_replay.rs

examples/trace_replay.rs:
