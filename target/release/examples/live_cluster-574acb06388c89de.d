/root/repo/target/release/examples/live_cluster-574acb06388c89de.d: examples/live_cluster.rs

/root/repo/target/release/examples/live_cluster-574acb06388c89de: examples/live_cluster.rs

examples/live_cluster.rs:
