/root/repo/target/release/examples/swala_cache-10d920dd90d846bc.d: examples/swala_cache.rs

/root/repo/target/release/examples/swala_cache-10d920dd90d846bc: examples/swala_cache.rs

examples/swala_cache.rs:
