/root/repo/target/debug/examples/quickstart-82c8427548ad0854.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-82c8427548ad0854: examples/quickstart.rs

examples/quickstart.rs:
