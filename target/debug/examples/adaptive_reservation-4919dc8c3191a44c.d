/root/repo/target/debug/examples/adaptive_reservation-4919dc8c3191a44c.d: examples/adaptive_reservation.rs

/root/repo/target/debug/examples/adaptive_reservation-4919dc8c3191a44c: examples/adaptive_reservation.rs

examples/adaptive_reservation.rs:
