/root/repo/target/debug/examples/clf_import-ed95931cde649de1.d: examples/clf_import.rs

/root/repo/target/debug/examples/clf_import-ed95931cde649de1: examples/clf_import.rs

examples/clf_import.rs:
