/root/repo/target/debug/examples/live_cluster-2ecdb4d1db94c33b.d: examples/live_cluster.rs

/root/repo/target/debug/examples/live_cluster-2ecdb4d1db94c33b: examples/live_cluster.rs

examples/live_cluster.rs:
