/root/repo/target/debug/examples/heterogeneous-83a41a0af2525330.d: examples/heterogeneous.rs

/root/repo/target/debug/examples/heterogeneous-83a41a0af2525330: examples/heterogeneous.rs

examples/heterogeneous.rs:
