/root/repo/target/debug/examples/swala_cache-12c5e9af9566caa5.d: examples/swala_cache.rs

/root/repo/target/debug/examples/swala_cache-12c5e9af9566caa5: examples/swala_cache.rs

examples/swala_cache.rs:
