/root/repo/target/debug/examples/failover-eeee41810ceb6259.d: examples/failover.rs

/root/repo/target/debug/examples/failover-eeee41810ceb6259: examples/failover.rs

examples/failover.rs:
