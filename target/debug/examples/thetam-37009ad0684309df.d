/root/repo/target/debug/examples/thetam-37009ad0684309df.d: crates/queueing/examples/thetam.rs

/root/repo/target/debug/examples/thetam-37009ad0684309df: crates/queueing/examples/thetam.rs

crates/queueing/examples/thetam.rs:
