/root/repo/target/debug/examples/trace_replay-623b8418e128dc7e.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-623b8418e128dc7e: examples/trace_replay.rs

examples/trace_replay.rs:
