/root/repo/target/debug/examples/capacity_planner-e32f7912229c51b6.d: examples/capacity_planner.rs

/root/repo/target/debug/examples/capacity_planner-e32f7912229c51b6: examples/capacity_planner.rs

examples/capacity_planner.rs:
