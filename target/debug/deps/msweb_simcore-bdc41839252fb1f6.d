/root/repo/target/debug/deps/msweb_simcore-bdc41839252fb1f6.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libmsweb_simcore-bdc41839252fb1f6.rlib: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/libmsweb_simcore-bdc41839252fb1f6.rmeta: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
