/root/repo/target/debug/deps/msweb-e6e530fb85b12e91.d: src/lib.rs

/root/repo/target/debug/deps/msweb-e6e530fb85b12e91: src/lib.rs

src/lib.rs:
