/root/repo/target/debug/deps/pooling_and_bursts-443082dc3f2b75a0.d: tests/pooling_and_bursts.rs

/root/repo/target/debug/deps/pooling_and_bursts-443082dc3f2b75a0: tests/pooling_and_bursts.rs

tests/pooling_and_bursts.rs:
