/root/repo/target/debug/deps/msweb_emu-f1fc5955e63cd294.d: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

/root/repo/target/debug/deps/msweb_emu-f1fc5955e63cd294: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

crates/emu/src/lib.rs:
crates/emu/src/cluster.rs:
crates/emu/src/job.rs:
crates/emu/src/node.rs:
crates/emu/src/timing.rs:
