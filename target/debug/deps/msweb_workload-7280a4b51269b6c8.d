/root/repo/target/debug/deps/msweb_workload-7280a4b51269b6c8.d: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/msweb_workload-7280a4b51269b6c8: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/cgi.rs:
crates/workload/src/clf.rs:
crates/workload/src/fileset.rs:
crates/workload/src/generators.rs:
crates/workload/src/request.rs:
crates/workload/src/trace.rs:
