/root/repo/target/debug/deps/experiments-49126435d00fe3d3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-49126435d00fe3d3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
