/root/repo/target/debug/deps/msweb-416d33bf9ed4f6cc.d: src/bin/msweb.rs

/root/repo/target/debug/deps/msweb-416d33bf9ed4f6cc: src/bin/msweb.rs

src/bin/msweb.rs:
