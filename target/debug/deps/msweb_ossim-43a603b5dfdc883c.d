/root/repo/target/debug/deps/msweb_ossim-43a603b5dfdc883c.d: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

/root/repo/target/debug/deps/libmsweb_ossim-43a603b5dfdc883c.rlib: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

/root/repo/target/debug/deps/libmsweb_ossim-43a603b5dfdc883c.rmeta: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

crates/ossim/src/lib.rs:
crates/ossim/src/config.rs:
crates/ossim/src/disk.rs:
crates/ossim/src/memory.rs:
crates/ossim/src/mlfq.rs:
crates/ossim/src/node.rs:
crates/ossim/src/process.rs:
