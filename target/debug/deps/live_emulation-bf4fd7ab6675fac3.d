/root/repo/target/debug/deps/live_emulation-bf4fd7ab6675fac3.d: tests/live_emulation.rs

/root/repo/target/debug/deps/live_emulation-bf4fd7ab6675fac3: tests/live_emulation.rs

tests/live_emulation.rs:
