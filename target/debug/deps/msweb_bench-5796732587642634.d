/root/repo/target/debug/deps/msweb_bench-5796732587642634.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/msweb_bench-5796732587642634: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
