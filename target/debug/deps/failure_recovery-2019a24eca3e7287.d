/root/repo/target/debug/deps/failure_recovery-2019a24eca3e7287.d: tests/failure_recovery.rs

/root/repo/target/debug/deps/failure_recovery-2019a24eca3e7287: tests/failure_recovery.rs

tests/failure_recovery.rs:
