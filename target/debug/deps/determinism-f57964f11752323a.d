/root/repo/target/debug/deps/determinism-f57964f11752323a.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-f57964f11752323a: tests/determinism.rs

tests/determinism.rs:
