/root/repo/target/debug/deps/msweb-d565e33ec70c6093.d: src/lib.rs

/root/repo/target/debug/deps/libmsweb-d565e33ec70c6093.rlib: src/lib.rs

/root/repo/target/debug/deps/libmsweb-d565e33ec70c6093.rmeta: src/lib.rs

src/lib.rs:
