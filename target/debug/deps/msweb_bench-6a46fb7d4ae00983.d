/root/repo/target/debug/deps/msweb_bench-6a46fb7d4ae00983.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmsweb_bench-6a46fb7d4ae00983.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmsweb_bench-6a46fb7d4ae00983.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
