/root/repo/target/debug/deps/proptests-5e735dbc63b735c6.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5e735dbc63b735c6: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
