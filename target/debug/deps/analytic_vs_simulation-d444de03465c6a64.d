/root/repo/target/debug/deps/analytic_vs_simulation-d444de03465c6a64.d: tests/analytic_vs_simulation.rs

/root/repo/target/debug/deps/analytic_vs_simulation-d444de03465c6a64: tests/analytic_vs_simulation.rs

tests/analytic_vs_simulation.rs:
