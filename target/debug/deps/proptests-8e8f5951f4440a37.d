/root/repo/target/debug/deps/proptests-8e8f5951f4440a37.d: crates/queueing/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8e8f5951f4440a37: crates/queueing/tests/proptests.rs

crates/queueing/tests/proptests.rs:
