/root/repo/target/debug/deps/msweb_queueing-16065628ca157abc.d: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

/root/repo/target/debug/deps/msweb_queueing-16065628ca157abc: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

crates/queueing/src/lib.rs:
crates/queueing/src/fig3.rs:
crates/queueing/src/flat.rs:
crates/queueing/src/hetero.rs:
crates/queueing/src/mmc.rs:
crates/queueing/src/ms.rs:
crates/queueing/src/msprime.rs:
crates/queueing/src/params.rs:
crates/queueing/src/theorem1.rs:
