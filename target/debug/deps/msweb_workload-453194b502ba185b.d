/root/repo/target/debug/deps/msweb_workload-453194b502ba185b.d: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libmsweb_workload-453194b502ba185b.rlib: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libmsweb_workload-453194b502ba185b.rmeta: crates/workload/src/lib.rs crates/workload/src/cgi.rs crates/workload/src/clf.rs crates/workload/src/fileset.rs crates/workload/src/generators.rs crates/workload/src/request.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/cgi.rs:
crates/workload/src/clf.rs:
crates/workload/src/fileset.rs:
crates/workload/src/generators.rs:
crates/workload/src/request.rs:
crates/workload/src/trace.rs:
