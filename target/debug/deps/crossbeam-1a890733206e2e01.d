/root/repo/target/debug/deps/crossbeam-1a890733206e2e01.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1a890733206e2e01.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1a890733206e2e01.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
