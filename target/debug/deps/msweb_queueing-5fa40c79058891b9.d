/root/repo/target/debug/deps/msweb_queueing-5fa40c79058891b9.d: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

/root/repo/target/debug/deps/libmsweb_queueing-5fa40c79058891b9.rlib: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

/root/repo/target/debug/deps/libmsweb_queueing-5fa40c79058891b9.rmeta: crates/queueing/src/lib.rs crates/queueing/src/fig3.rs crates/queueing/src/flat.rs crates/queueing/src/hetero.rs crates/queueing/src/mmc.rs crates/queueing/src/ms.rs crates/queueing/src/msprime.rs crates/queueing/src/params.rs crates/queueing/src/theorem1.rs

crates/queueing/src/lib.rs:
crates/queueing/src/fig3.rs:
crates/queueing/src/flat.rs:
crates/queueing/src/hetero.rs:
crates/queueing/src/mmc.rs:
crates/queueing/src/ms.rs:
crates/queueing/src/msprime.rs:
crates/queueing/src/params.rs:
crates/queueing/src/theorem1.rs:
