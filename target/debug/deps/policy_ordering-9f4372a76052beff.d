/root/repo/target/debug/deps/policy_ordering-9f4372a76052beff.d: tests/policy_ordering.rs

/root/repo/target/debug/deps/policy_ordering-9f4372a76052beff: tests/policy_ordering.rs

tests/policy_ordering.rs:
