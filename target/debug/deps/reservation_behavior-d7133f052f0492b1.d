/root/repo/target/debug/deps/reservation_behavior-d7133f052f0492b1.d: tests/reservation_behavior.rs

/root/repo/target/debug/deps/reservation_behavior-d7133f052f0492b1: tests/reservation_behavior.rs

tests/reservation_behavior.rs:
