/root/repo/target/debug/deps/msweb_simcore-549c93ec03a5785f.d: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/msweb_simcore-549c93ec03a5785f: crates/simcore/src/lib.rs crates/simcore/src/dist.rs crates/simcore/src/event.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/dist.rs:
crates/simcore/src/event.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/time.rs:
