/root/repo/target/debug/deps/cli-8750fd79a1223755.d: tests/cli.rs

/root/repo/target/debug/deps/cli-8750fd79a1223755: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_msweb=/root/repo/target/debug/msweb
