/root/repo/target/debug/deps/msweb_emu-beda19428eb91a3f.d: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

/root/repo/target/debug/deps/libmsweb_emu-beda19428eb91a3f.rlib: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

/root/repo/target/debug/deps/libmsweb_emu-beda19428eb91a3f.rmeta: crates/emu/src/lib.rs crates/emu/src/cluster.rs crates/emu/src/job.rs crates/emu/src/node.rs crates/emu/src/timing.rs

crates/emu/src/lib.rs:
crates/emu/src/cluster.rs:
crates/emu/src/job.rs:
crates/emu/src/node.rs:
crates/emu/src/timing.rs:
