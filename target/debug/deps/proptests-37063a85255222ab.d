/root/repo/target/debug/deps/proptests-37063a85255222ab.d: crates/ossim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-37063a85255222ab: crates/ossim/tests/proptests.rs

crates/ossim/tests/proptests.rs:
