/root/repo/target/debug/deps/proptests-9974192c42532d78.d: crates/simcore/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9974192c42532d78: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
