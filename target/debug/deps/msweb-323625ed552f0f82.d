/root/repo/target/debug/deps/msweb-323625ed552f0f82.d: src/bin/msweb.rs

/root/repo/target/debug/deps/msweb-323625ed552f0f82: src/bin/msweb.rs

src/bin/msweb.rs:
