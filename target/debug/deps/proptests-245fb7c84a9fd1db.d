/root/repo/target/debug/deps/proptests-245fb7c84a9fd1db.d: crates/workload/tests/proptests.rs

/root/repo/target/debug/deps/proptests-245fb7c84a9fd1db: crates/workload/tests/proptests.rs

crates/workload/tests/proptests.rs:
