/root/repo/target/debug/deps/msweb_ossim-768e0dc960fc20e2.d: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

/root/repo/target/debug/deps/msweb_ossim-768e0dc960fc20e2: crates/ossim/src/lib.rs crates/ossim/src/config.rs crates/ossim/src/disk.rs crates/ossim/src/memory.rs crates/ossim/src/mlfq.rs crates/ossim/src/node.rs crates/ossim/src/process.rs

crates/ossim/src/lib.rs:
crates/ossim/src/config.rs:
crates/ossim/src/disk.rs:
crates/ossim/src/memory.rs:
crates/ossim/src/mlfq.rs:
crates/ossim/src/node.rs:
crates/ossim/src/process.rs:
