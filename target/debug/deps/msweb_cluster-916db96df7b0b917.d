/root/repo/target/debug/deps/msweb_cluster-916db96df7b0b917.d: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/config.rs crates/cluster/src/failure.rs crates/cluster/src/loadinfo.rs crates/cluster/src/metrics.rs crates/cluster/src/policy.rs crates/cluster/src/reservation.rs crates/cluster/src/rsrc.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/libmsweb_cluster-916db96df7b0b917.rlib: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/config.rs crates/cluster/src/failure.rs crates/cluster/src/loadinfo.rs crates/cluster/src/metrics.rs crates/cluster/src/policy.rs crates/cluster/src/reservation.rs crates/cluster/src/rsrc.rs crates/cluster/src/sim.rs

/root/repo/target/debug/deps/libmsweb_cluster-916db96df7b0b917.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cache.rs crates/cluster/src/config.rs crates/cluster/src/failure.rs crates/cluster/src/loadinfo.rs crates/cluster/src/metrics.rs crates/cluster/src/policy.rs crates/cluster/src/reservation.rs crates/cluster/src/rsrc.rs crates/cluster/src/sim.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cache.rs:
crates/cluster/src/config.rs:
crates/cluster/src/failure.rs:
crates/cluster/src/loadinfo.rs:
crates/cluster/src/metrics.rs:
crates/cluster/src/policy.rs:
crates/cluster/src/reservation.rs:
crates/cluster/src/rsrc.rs:
crates/cluster/src/sim.rs:
